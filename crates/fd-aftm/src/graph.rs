//! The AFTM graph structure.

use crate::transition::RawTransition;
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A node of the AFTM: an activity or a fragment.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// An activity class.
    Activity(ClassName),
    /// A fragment class.
    Fragment(ClassName),
}

impl NodeId {
    /// The underlying class name.
    pub fn class(&self) -> &ClassName {
        match self {
            NodeId::Activity(c) | NodeId::Fragment(c) => c,
        }
    }

    /// Whether this is an activity node.
    pub fn is_activity(&self) -> bool {
        matches!(self, NodeId::Activity(_))
    }

    /// Whether this is a fragment node.
    pub fn is_fragment(&self) -> bool {
        matches!(self, NodeId::Fragment(_))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Activity(c) => write!(f, "A({c})"),
            NodeId::Fragment(c) => write!(f, "F({c})"),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The three basic transition kinds of Definition 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `A → A`: activity to activity.
    E1,
    /// `A → Fᵢ`: activity to one of its own fragments.
    E2,
    /// `F → Fᵢ`: fragment to fragment within the same host activity.
    E3,
}

/// A directed AFTM edge. For inner edges (E2/E3) `host` names the activity
/// the transition happens inside; for E1 it equals the source activity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Transition kind.
    pub kind: EdgeKind,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// The activity that hosts the transition.
    pub host: ClassName,
}

impl Edge {
    /// An `A → A` edge.
    pub fn e1(from: impl Into<ClassName>, to: impl Into<ClassName>) -> Self {
        let from = from.into();
        Edge {
            kind: EdgeKind::E1,
            host: from.clone(),
            from: NodeId::Activity(from),
            to: NodeId::Activity(to.into()),
        }
    }

    /// An `A → Fᵢ` edge.
    pub fn e2(activity: impl Into<ClassName>, fragment: impl Into<ClassName>) -> Self {
        let activity = activity.into();
        Edge {
            kind: EdgeKind::E2,
            host: activity.clone(),
            from: NodeId::Activity(activity),
            to: NodeId::Fragment(fragment.into()),
        }
    }

    /// An `F → Fᵢ` edge inside `host`.
    pub fn e3(
        host: impl Into<ClassName>,
        from: impl Into<ClassName>,
        to: impl Into<ClassName>,
    ) -> Self {
        Edge {
            kind: EdgeKind::E3,
            host: host.into(),
            from: NodeId::Fragment(from.into()),
            to: NodeId::Fragment(to.into()),
        }
    }
}

/// The Activity & Fragment Transition Model.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Aftm {
    nodes: BTreeSet<NodeId>,
    /// Nodes the dynamic phase has visited.
    visited: BTreeSet<NodeId>,
    edges: BTreeSet<Edge>,
    /// The entry activity `A0` (the launcher).
    entry: Option<ClassName>,
}

impl Aftm {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the entry activity `A0`, inserting its node.
    pub fn set_entry(&mut self, activity: impl Into<ClassName>) {
        let activity = activity.into();
        self.add_node(NodeId::Activity(activity.clone()));
        self.entry = Some(activity);
    }

    /// The entry activity, if set.
    pub fn entry(&self) -> Option<&ClassName> {
        self.entry.as_ref()
    }

    /// Inserts a node (unvisited); returns `true` if it was new.
    pub fn add_node(&mut self, node: NodeId) -> bool {
        self.nodes.insert(node)
    }

    /// Inserts an edge plus its endpoints; returns `true` if anything in
    /// the model changed — the signal that triggers another evolutionary
    /// round.
    pub fn add_edge(&mut self, edge: Edge) -> bool {
        let mut changed = self.add_node(edge.from.clone());
        changed |= self.add_node(edge.to.clone());
        changed |= self.edges.insert(edge);
        changed
    }

    /// Applies a raw (possibly 7-type) transition, merging it into basic
    /// edges per §IV-A; returns `true` if the model changed.
    pub fn apply(&mut self, raw: RawTransition) -> bool {
        let mut changed = false;
        for edge in raw.merge() {
            changed |= self.add_edge(edge);
        }
        changed
    }

    /// Marks a node visited; returns `true` if it existed and was
    /// previously unvisited.
    pub fn mark_visited(&mut self, node: &NodeId) -> bool {
        if !self.nodes.contains(node) {
            return false;
        }
        self.visited.insert(node.clone())
    }

    /// Whether `node` is marked visited.
    pub fn is_visited(&self, node: &NodeId) -> bool {
        self.visited.contains(node)
    }

    /// Whether the model contains `node`.
    pub fn contains(&self, node: &NodeId) -> bool {
        self.nodes.contains(node)
    }

    /// All nodes in order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.nodes.iter()
    }

    /// All edges in order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Outgoing edges of `node`.
    pub fn edges_from<'a>(&'a self, node: &'a NodeId) -> impl Iterator<Item = &'a Edge> {
        self.edges.iter().filter(move |e| &e.from == node)
    }

    /// Activity nodes, in order.
    pub fn activities(&self) -> impl Iterator<Item = &ClassName> {
        self.nodes.iter().filter(|n| n.is_activity()).map(NodeId::class)
    }

    /// Fragment nodes, in order.
    pub fn fragments(&self) -> impl Iterator<Item = &ClassName> {
        self.nodes.iter().filter(|n| n.is_fragment()).map(NodeId::class)
    }

    /// Nodes not yet visited, in order.
    pub fn unvisited(&self) -> impl Iterator<Item = &NodeId> {
        self.nodes.iter().filter(|n| !self.visited.contains(*n))
    }

    /// Whether every node has been visited (one half of the paper's
    /// termination condition).
    pub fn all_visited(&self) -> bool {
        self.visited.len() == self.nodes.len()
    }

    /// Count of (activities, fragments).
    pub fn counts(&self) -> (usize, usize) {
        let a = self.nodes.iter().filter(|n| n.is_activity()).count();
        (a, self.nodes.len() - a)
    }

    /// The host activities a fragment is attached to, according to E2/E3
    /// edges.
    pub fn hosts_of_fragment(&self, fragment: &str) -> BTreeSet<&ClassName> {
        self.edges
            .iter()
            .filter(|e| matches!(&e.to, NodeId::Fragment(f) if f.as_str() == fragment))
            .map(|e| &e.host)
            .collect()
    }

    /// Fragments hosted by `activity` (targets of its E2 edges and of E3
    /// edges inside it).
    pub fn fragments_of_activity(&self, activity: &str) -> BTreeSet<&ClassName> {
        self.edges
            .iter()
            .filter(|e| e.kind != EdgeKind::E1 && e.host.as_str() == activity)
            .filter_map(|e| match &e.to {
                NodeId::Fragment(f) => Some(f),
                NodeId::Activity(_) => None,
            })
            .collect()
    }

    /// Breadth-first order over the model starting at the entry activity.
    /// This is the traversal the queue-generation module uses ("traverses
    /// the initial AFTM by breadth-first search").
    pub fn bfs_from_entry(&self) -> Vec<NodeId> {
        let Some(entry) = &self.entry else { return Vec::new() };
        let start = NodeId::Activity(entry.clone());
        if !self.nodes.contains(&start) {
            return Vec::new();
        }
        let mut order = Vec::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start.clone());
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            for edge in self.edges_from(&node) {
                if seen.insert(edge.to.clone()) {
                    queue.push_back(edge.to.clone());
                }
            }
            order.push(node);
        }
        order
    }

    /// The BFS-tree edge path from the entry to `target`, or `None` if
    /// unreachable. Queue items derive their operation lists from this.
    pub fn path_to(&self, target: &NodeId) -> Option<Vec<Edge>> {
        let entry = self.entry.as_ref()?;
        let start = NodeId::Activity(entry.clone());
        if &start == target {
            return Some(Vec::new());
        }
        let mut parent: BTreeMap<NodeId, Edge> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(start.clone());
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        seen.insert(start);
        while let Some(node) = queue.pop_front() {
            for edge in self.edges_from(&node) {
                if seen.insert(edge.to.clone()) {
                    parent.insert(edge.to.clone(), edge.clone());
                    if &edge.to == target {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = target.clone();
                        while let Some(e) = parent.get(&cur) {
                            path.push(e.clone());
                            cur = e.from.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(edge.to.clone());
                }
            }
        }
        None
    }

    /// Nodes reachable from the entry. The paper removes *isolated*
    /// activities; this is the reachability test backing that filter.
    pub fn reachable(&self) -> BTreeSet<NodeId> {
        self.bfs_from_entry().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 5 example: A0 → A1, A0 → A2, A0 → F0, F0 → F1, A2 → F2.
    fn fig5() -> Aftm {
        let mut m = Aftm::new();
        m.set_entry("app.A0");
        m.add_edge(Edge::e1("app.A0", "app.A1"));
        m.add_edge(Edge::e1("app.A0", "app.A2"));
        m.add_edge(Edge::e2("app.A0", "app.F0"));
        m.add_edge(Edge::e3("app.A0", "app.F0", "app.F1"));
        m.add_edge(Edge::e2("app.A2", "app.F2"));
        m
    }

    #[test]
    fn counts_and_membership() {
        let m = fig5();
        assert_eq!(m.counts(), (3, 3));
        assert!(m.contains(&NodeId::Fragment("app.F1".into())));
        assert!(!m.contains(&NodeId::Activity("app.F1".into())));
    }

    #[test]
    fn add_edge_reports_change_only_once() {
        let mut m = fig5();
        assert!(!m.add_edge(Edge::e1("app.A0", "app.A1")), "duplicate must not change");
        assert!(m.add_edge(Edge::e1("app.A1", "app.A2")), "new edge between old nodes");
    }

    #[test]
    fn visited_bookkeeping() {
        let mut m = fig5();
        let n = NodeId::Activity("app.A1".into());
        assert!(!m.is_visited(&n));
        assert!(m.mark_visited(&n));
        assert!(!m.mark_visited(&n), "second mark is a no-op");
        assert!(m.is_visited(&n));
        assert!(!m.mark_visited(&NodeId::Activity("app.Ghost".into())));
        assert_eq!(m.unvisited().count(), 5);
        assert!(!m.all_visited());
    }

    #[test]
    fn bfs_visits_everything_reachable_breadth_first() {
        let m = fig5();
        let order = m.bfs_from_entry();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId::Activity("app.A0".into()));
        // F1 (depth 2) must come after all depth-1 nodes.
        let pos = |n: &NodeId| order.iter().position(|x| x == n).unwrap();
        let f1 = NodeId::Fragment("app.F1".into());
        for depth1 in ["app.A1", "app.A2"] {
            assert!(pos(&NodeId::Activity(depth1.into())) < pos(&f1));
        }
    }

    #[test]
    fn path_to_nested_fragment() {
        let m = fig5();
        let path = m.path_to(&NodeId::Fragment("app.F1".into())).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].kind, EdgeKind::E2);
        assert_eq!(path[1].kind, EdgeKind::E3);
        assert_eq!(path[1].to, NodeId::Fragment("app.F1".into()));
    }

    #[test]
    fn path_to_entry_is_empty() {
        let m = fig5();
        assert_eq!(m.path_to(&NodeId::Activity("app.A0".into())), Some(Vec::new()));
    }

    #[test]
    fn unreachable_node_has_no_path() {
        let mut m = fig5();
        m.add_node(NodeId::Activity("app.Isolated".into()));
        assert_eq!(m.path_to(&NodeId::Activity("app.Isolated".into())), None);
        assert!(!m.reachable().contains(&NodeId::Activity("app.Isolated".into())));
    }

    #[test]
    fn host_queries() {
        let m = fig5();
        let hosts = m.hosts_of_fragment("app.F1");
        assert_eq!(hosts.len(), 1);
        assert!(hosts.iter().any(|h| h.as_str() == "app.A0"));
        let frags = m.fragments_of_activity("app.A0");
        let names: Vec<&str> = frags.iter().map(|f| f.as_str()).collect();
        assert_eq!(names, vec!["app.F0", "app.F1"]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = fig5();
        let json = serde_json::to_string(&m).unwrap();
        let back: Aftm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
