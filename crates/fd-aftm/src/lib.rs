//! The Activity & Fragment Transition Model (AFTM) — Definition 1 of the
//! FragDroid paper.
//!
//! An AFTM is a tuple ⟨A, F, E⟩: a finite set of activities, a finite set
//! of fragments, and transition edges of three basic kinds:
//!
//! * **E1**: `A → A` — from an activity to another activity;
//! * **E2**: `A → Fᵢ` — from an activity to one of its own fragments;
//! * **E3**: `F → Fᵢ` — between two fragments of the same host activity.
//!
//! Seven transition types occur in practice; [`Aftm::apply`] performs the
//! paper's merge (§IV-A) that reduces all seven to the three basic kinds
//! (`F → Aᵢ` is dropped, edges out of a fragment are re-rooted at its host
//! activity, and `A → F_o` is split into `A → A'` plus `A' → Fᵢ`).
//!
//! The model is *evolutionary*: the static phase initializes it, and the
//! dynamic phase keeps inserting newly observed transitions and marking
//! nodes visited until a fixpoint (§VI). Every mutating method reports
//! whether it changed the model, which is what drives the outer loop's
//! termination condition.

//! # Example
//!
//! ```
//! use fd_aftm::{Aftm, Edge, NodeId};
//!
//! let mut model = Aftm::new();
//! model.set_entry("app.Main");
//! model.add_edge(Edge::e1("app.Main", "app.Settings"));   // A → A
//! model.add_edge(Edge::e2("app.Main", "app.HomeFrag"));   // A → Fi
//! model.add_edge(Edge::e3("app.Main", "app.HomeFrag", "app.StatsFrag")); // F → Fi
//!
//! assert_eq!(model.counts(), (2, 2));
//! let target = NodeId::Fragment("app.StatsFrag".into());
//! assert_eq!(model.path_to(&target).unwrap().len(), 2);
//! assert!(model.mark_visited(&target));
//! ```

#![forbid(unsafe_code)]

pub mod diff;
pub mod dot;
pub mod graph;
pub mod stats;
pub mod transition;

pub use diff::{diff, AftmDelta};
pub use graph::{Aftm, Edge, EdgeKind, NodeId};
pub use stats::{stats, AftmStats};
pub use transition::RawTransition;
