//! Property tests on AFTM invariants.

use fd_aftm::{Aftm, Edge, NodeId, RawTransition};
use proptest::prelude::*;

fn activity() -> impl Strategy<Value = String> {
    prop::sample::select((0..8).map(|i| format!("app.A{i}")).collect::<Vec<_>>())
}

fn fragment() -> impl Strategy<Value = String> {
    prop::sample::select((0..8).map(|i| format!("app.F{i}")).collect::<Vec<_>>())
}

fn raw_transition() -> impl Strategy<Value = RawTransition> {
    prop_oneof![
        (activity(), activity()).prop_map(|(from, to)| RawTransition::ActivityToActivity {
            from: from.into(),
            to: to.into()
        }),
        (activity(), fragment()).prop_map(|(a, f)| RawTransition::ActivityToOwnFragment {
            activity: a.into(),
            fragment: f.into()
        }),
        (activity(), fragment(), fragment()).prop_map(|(h, from, to)| {
            RawTransition::FragmentToFragment { host: h.into(), from: from.into(), to: to.into() }
        }),
        (activity(), activity(), fragment()).prop_map(|(from, host, f)| {
            RawTransition::ActivityToForeignFragment {
                from: from.into(),
                host: host.into(),
                fragment: f.into(),
            }
        }),
        (activity(), fragment()).prop_map(|(h, f)| RawTransition::FragmentToHostActivity {
            host: h.into(),
            fragment: f.into()
        }),
        (activity(), fragment(), activity()).prop_map(|(h, f, to)| {
            RawTransition::FragmentToActivity { host: h.into(), fragment: f.into(), to: to.into() }
        }),
        (activity(), fragment(), activity(), fragment()).prop_map(|(fh, f, th, tf)| {
            RawTransition::FragmentToForeignFragment {
                from_host: fh.into(),
                fragment: f.into(),
                to_host: th.into(),
                to_fragment: tf.into(),
            }
        }),
    ]
}

proptest! {
    /// Merging any raw transition yields only well-formed basic edges:
    /// E1 activity→activity, E2 activity→fragment (host == from),
    /// E3 fragment→fragment.
    #[test]
    fn merge_produces_only_basic_edges(raw in raw_transition()) {
        for edge in raw.merge() {
            match edge.kind {
                fd_aftm::EdgeKind::E1 => {
                    prop_assert!(edge.from.is_activity());
                    prop_assert!(edge.to.is_activity());
                    prop_assert_eq!(edge.host.as_str(), edge.from.class().as_str());
                }
                fd_aftm::EdgeKind::E2 => {
                    prop_assert!(edge.from.is_activity());
                    prop_assert!(edge.to.is_fragment());
                    prop_assert_eq!(edge.host.as_str(), edge.from.class().as_str());
                }
                fd_aftm::EdgeKind::E3 => {
                    prop_assert!(edge.from.is_fragment());
                    prop_assert!(edge.to.is_fragment());
                }
            }
        }
    }

    /// Applying transitions is monotone (nodes/edges only grow) and
    /// idempotent (re-applying reports no change).
    #[test]
    fn apply_is_monotone_and_idempotent(raws in prop::collection::vec(raw_transition(), 0..30)) {
        let mut model = Aftm::new();
        model.set_entry("app.A0");
        let mut node_count = 1;
        let mut edge_count = 0;
        for raw in &raws {
            model.apply(raw.clone());
            let nodes = model.nodes().count();
            let edges = model.edges().count();
            prop_assert!(nodes >= node_count && edges >= edge_count);
            node_count = nodes;
            edge_count = edges;
        }
        for raw in &raws {
            prop_assert!(!model.apply(raw.clone()), "re-apply must not change the model");
        }
    }

    /// Every BFS-reachable node has a reconstructible path whose edges
    /// chain correctly from the entry to the node.
    #[test]
    fn paths_chain_from_entry(raws in prop::collection::vec(raw_transition(), 0..30)) {
        let mut model = Aftm::new();
        model.set_entry("app.A0");
        for raw in raws {
            model.apply(raw);
        }
        let entry = NodeId::Activity("app.A0".into());
        for node in model.bfs_from_entry() {
            let path = model.path_to(&node);
            prop_assert!(path.is_some(), "reachable node {node} has no path");
            let path = path.unwrap();
            let mut at = entry.clone();
            for edge in &path {
                prop_assert_eq!(&edge.from, &at, "path edge does not chain");
                at = edge.to.clone();
            }
            prop_assert_eq!(at, node);
        }
    }

    /// BFS order is consistent with shortest-path depth: a node at depth d
    /// never appears before a node at depth < d is exhausted... weaker,
    /// checkable form: depths along the BFS order are non-decreasing.
    #[test]
    fn bfs_depths_non_decreasing(raws in prop::collection::vec(raw_transition(), 0..30)) {
        let mut model = Aftm::new();
        model.set_entry("app.A0");
        for raw in raws {
            model.apply(raw);
        }
        let depths: Vec<usize> = model
            .bfs_from_entry()
            .iter()
            .map(|n| model.path_to(n).expect("reachable").len())
            .collect();
        prop_assert!(depths.windows(2).all(|w| w[0] <= w[1]), "depths {depths:?}");
    }
}

#[test]
fn visited_never_exceeds_nodes() {
    let mut m = Aftm::new();
    m.set_entry("app.A0");
    m.add_edge(Edge::e1("app.A0", "app.A1"));
    assert!(m.mark_visited(&NodeId::Activity("app.A0".into())));
    assert!(m.mark_visited(&NodeId::Activity("app.A1".into())));
    assert!(m.all_visited());
    // Unknown nodes cannot be marked, so all_visited stays meaningful.
    assert!(!m.mark_visited(&NodeId::Fragment("app.F0".into())));
    assert!(m.all_visited());
}
