//! Seeded random app generation — the workload generator for scaling
//! benchmarks and the corpus study.

use crate::builder::{ActivitySpec, AppBuilder, FragmentSpec, GatedLink, GeneratedApp};
use fd_droidsim::SENSITIVE_APIS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for random app generation. All probabilities are in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of activities (≥ 1; the first is the launcher).
    pub activities: usize,
    /// Number of fragments. Zero models the ~9% of apps that do not use
    /// fragments.
    pub fragments: usize,
    /// Probability that a fragment-hosting activity uses a hidden drawer
    /// instead of a visible tab strip.
    pub p_drawer: f64,
    /// Probability that a fragment is attached without a FragmentManager.
    pub p_direct: f64,
    /// Probability that a fragment's constructor takes parameters.
    pub p_ctor_args: f64,
    /// Probability that an activity link is input-gated.
    pub p_gate: f64,
    /// Probability that a gate's secret is in the input-dependency file.
    pub p_gate_known: f64,
    /// Probability that an activity has a dialog button.
    pub p_dialog: f64,
    /// Probability that an activity has an action-bar popup.
    pub p_popup: f64,
    /// Expected number of sensitive-API calls per activity/fragment.
    pub api_density: f64,
    /// Probability that a gated target also requires an intent extra
    /// (making forced starts fail).
    pub p_requires_extra: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            activities: 8,
            fragments: 6,
            p_drawer: 0.4,
            p_direct: 0.06,
            p_ctor_args: 0.08,
            p_gate: 0.18,
            p_gate_known: 0.6,
            p_dialog: 0.3,
            p_popup: 0.2,
            api_density: 0.8,
            p_requires_extra: 0.5,
        }
    }
}

impl GenConfig {
    /// A config scaled to roughly `n` UI elements, for benchmarks.
    pub fn sized(n: usize) -> Self {
        GenConfig {
            activities: (n / 2).max(1),
            fragments: n - (n / 2).max(1).min(n),
            ..GenConfig::default()
        }
    }
}

/// Generates one app deterministically from `seed`.
pub fn generate(package: &str, config: &GenConfig, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_act = config.activities.max(1);

    let act_name = |i: usize| if i == 0 { "Main".to_string() } else { format!("Screen{i}") };
    let frag_name = |i: usize| format!("Frag{i}");

    let mut activities: Vec<ActivitySpec> = (0..n_act)
        .map(|i| {
            let mut spec = ActivitySpec::new(act_name(i));
            if i == 0 {
                spec = spec.launcher();
            }
            if rng.gen_bool(config.p_dialog) {
                spec = spec.with_dialog();
            }
            if rng.gen_bool(config.p_popup) {
                spec = spec.with_popup_menu();
            }
            spec.extra_widgets = rng.gen_range(0..4);
            spec
        })
        .collect();

    // Connect every non-launcher activity to a random earlier one, so the
    // static call graph is a tree plus occasional extra links.
    for i in 1..n_act {
        let parent = rng.gen_range(0..i);
        if rng.gen_bool(config.p_gate) {
            let known = rng.gen_bool(config.p_gate_known);
            activities[parent].gates.push(GatedLink {
                target: act_name(i),
                secret: format!("secret-{i}"),
                input_known: known,
            });
            if rng.gen_bool(config.p_requires_extra) {
                activities[i].requires_extra = Some("ctx".to_string());
            }
        } else {
            activities[parent].buttons_to.push(act_name(i));
        }
        // Occasional extra cross-link.
        if n_act > 2 && rng.gen_bool(0.25) {
            let other = rng.gen_range(0..n_act);
            if other != i {
                activities[other].buttons_to.push(act_name(i));
            }
        }
    }

    // Assign fragments to host activities.
    let mut fragments: Vec<FragmentSpec> = Vec::with_capacity(config.fragments);
    for f in 0..config.fragments {
        let mut frag = FragmentSpec::new(frag_name(f));
        if rng.gen_bool(config.p_ctor_args) {
            frag = frag.ctor_requires_args();
        }
        frag.extra_widgets = rng.gen_range(0..3);
        let host = rng.gen_range(0..n_act);
        if rng.gen_bool(config.p_direct) {
            activities[host].direct_fragments.push(frag.name.clone());
        } else if activities[host].initial_fragment.is_none() && rng.gen_bool(0.5) {
            activities[host].initial_fragment = Some(frag.name.clone());
        } else if rng.gen_bool(config.p_drawer) {
            activities[host].drawer_fragments.push(frag.name.clone());
        } else {
            activities[host].tab_fragments.push(frag.name.clone());
        }
        // Fragment-to-fragment switches between co-hosted fragments.
        if f > 0 && rng.gen_bool(0.3) {
            let sibling = rng.gen_range(0..f);
            let both_hosted_here = |a: &ActivitySpec| {
                let hosts = |n: &str| {
                    a.initial_fragment.as_deref() == Some(n)
                        || a.drawer_fragments.iter().any(|x| x == n)
                        || a.tab_fragments.iter().any(|x| x == n)
                };
                hosts(&frag.name) && hosts(&frag_name(sibling))
            };
            if activities.iter().any(both_hosted_here) {
                frag = frag.switch_to(frag_name(sibling));
            }
        }
        fragments.push(frag);
    }

    // Sprinkle sensitive APIs.
    let mut api_cursor = rng.gen_range(0..SENSITIVE_APIS.len());
    let mut next_api = |rng: &mut StdRng, density: f64| -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut budget = density;
        while budget > 0.0 && rng.gen_bool(budget.min(1.0)) {
            let (g, n) = SENSITIVE_APIS[api_cursor % SENSITIVE_APIS.len()];
            api_cursor += 1;
            out.push((g.to_string(), n.to_string()));
            budget -= 1.0;
        }
        out
    };
    for spec in &mut activities {
        spec.apis = next_api(&mut rng, config.api_density);
    }
    for frag in &mut fragments {
        frag.apis = next_api(&mut rng, config.api_density);
    }

    let mut builder = AppBuilder::new(package).meta("Generated", 500_000);
    for a in activities {
        builder = builder.activity(a);
    }
    for f in fragments {
        builder = builder.fragment(f);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_droidsim::Device;

    #[test]
    fn generation_is_deterministic() {
        let c = GenConfig::default();
        let a = generate("gen.app", &c, 42);
        let b = generate("gen.app", &c, 42);
        assert_eq!(a.app, b.app);
        assert_eq!(a.known_inputs, b.known_inputs);
    }

    #[test]
    fn different_seeds_differ() {
        let c = GenConfig::default();
        let a = generate("gen.app", &c, 1);
        let b = generate("gen.app", &c, 2);
        assert_ne!(a.app, b.app);
    }

    #[test]
    fn generated_apps_launch() {
        for seed in 0..20 {
            let gen = generate("gen.app", &GenConfig::default(), seed);
            let mut d = Device::new(gen.app);
            let out = d.launch().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Launch either lands on a screen or legitimately crashes
            // (e.g. Main requires an extra in a pathological config).
            let _ = out;
        }
    }

    #[test]
    fn zero_fragments_config_produces_fragment_free_app() {
        let c = GenConfig { fragments: 0, ..GenConfig::default() };
        let gen = generate("gen.nofrag", &c, 7);
        let has_fragment =
            gen.app.classes.iter().any(|cl| gen.app.classes.is_fragment_class(cl.name.as_str()));
        assert!(!has_fragment);
    }

    #[test]
    fn respects_activity_count() {
        let c = GenConfig { activities: 13, fragments: 0, ..GenConfig::default() };
        let gen = generate("gen.count", &c, 3);
        assert_eq!(gen.app.manifest.activities.len(), 13);
    }
}
