//! Synthetic Android app generation for the FragDroid reproduction.
//!
//! The paper evaluates on real Google-Play apps; those are not available
//! to a pure-Rust reproduction, so this crate manufactures apps with the
//! same *structural* properties:
//!
//! * [`builder`] — a declarative [`AppBuilder`](builder::AppBuilder):
//!   activities with navigation drawers, tab strips, login/search gates,
//!   dialogs, action-bar popups, intent links, fragments with their own
//!   buttons and sensitive-API calls. The builder emits complete
//!   [`fd_apk::AndroidApp`]s (manifest + smali classes + layouts) that the
//!   `fd-droidsim` device executes and `fd-static` analyses.
//! * [`templates`] — canned apps reproducing the paper's motivating
//!   figures (the Fig. 1 tab switcher, the Fig. 2 hidden-drawer gallery)
//!   plus a small quickstart app.
//! * [`random`] — a seeded random generator used for scaling benchmarks
//!   and the corpus study.
//! * [`paper_apps`] — the 15 Table-I evaluation apps, with the paper's
//!   per-app Activity/Fragment counts and documented failure modes
//!   (material-design drawers, strict inputs, packers, direct-loaded
//!   fragments, fragment constructors with parameters).
//! * [`corpus`] — the 217-app / 27-category dataset behind the "91% of
//!   apps use Fragments" study.

pub mod builder;
pub mod corpus;
pub mod paper_apps;
pub mod random;
pub mod stream;
pub mod templates;

pub use builder::{ActivitySpec, AppBuilder, FragmentSpec, GatedLink, GeneratedApp};
