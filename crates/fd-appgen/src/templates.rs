//! Canned apps reproducing the paper's motivating figures.

use crate::builder::{ActivitySpec, AppBuilder, FragmentSpec, GatedLink, GeneratedApp};

/// The Fig. 1 situation: one activity with a CATEGORY / RECENT tab strip;
/// each tab is a fragment with its own content and listeners. Clicking a
/// tab is a *fragment transformation* — the activity never changes, so an
/// activity-level tool sees a single state.
pub fn tabbed_categories() -> GeneratedApp {
    AppBuilder::new("fig1.manga")
        .meta("Comics", 1_000_000)
        .activity(
            ActivitySpec::new("Reader")
                .launcher()
                .initial_fragment("CategoryFragment")
                .tabs(["CategoryFragment", "RecentFragment"]),
        )
        .fragment(
            FragmentSpec::new("CategoryFragment").api("internet", "connect").link_to("Detail"),
        )
        .fragment(FragmentSpec::new("RecentFragment").api("storage", "getExternalStorageState"))
        .activity(ActivitySpec::new("Detail"))
        .build()
}

/// The Fig. 2 situation: a wallpapers app whose two gallery fragments are
/// bridged only by a hidden slide menu — the drawer "only can be seen by
/// clicking the left-top icon or sliding from left to right".
pub fn nav_drawer_wallpapers() -> GeneratedApp {
    AppBuilder::new("fig2.wallpapers")
        .meta("Personalization", 5_000_000)
        .activity(
            ActivitySpec::new("Gallery")
                .launcher()
                .initial_fragment("WallpapersFragment")
                .drawer(["WallpapersFragment", "FavoritesFragment"]),
        )
        .fragment(FragmentSpec::new("WallpapersFragment").api("internet", "inet"))
        .fragment(FragmentSpec::new("FavoritesFragment").api("storage", "sdcard"))
        .build()
}

/// A small app exercising most builder features at once; used by the
/// quickstart example and by tests that need "a typical app".
pub fn quickstart() -> GeneratedApp {
    AppBuilder::new("com.example.quickstart")
        .meta("Tools", 100_000)
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("HomeFragment")
                .drawer(["HomeFragment", "StatsFragment"])
                .button_to("Settings")
                .with_dialog()
                .api("phone", "getDeviceId"),
        )
        .activity(ActivitySpec::new("Settings").gate(GatedLink {
            target: "Account".into(),
            secret: "pin-1234".into(),
            input_known: true,
        }))
        .activity(ActivitySpec::new("Account").requires_extra("user"))
        .fragment(
            FragmentSpec::new("HomeFragment")
                .api("internet", "connect")
                .link_to("Settings")
                .switch_to("StatsFragment"),
        )
        .fragment(FragmentSpec::new("StatsFragment").api("location", "getAllProviders"))
        .build()
}

/// A shop app: a product catalog in tabs, a cart fragment bridged through
/// the action bar's hidden flows, and an address-gated checkout. Exercises
/// multi-pane (§II-B), input gates, popups, and fragment→activity links.
pub fn ecommerce() -> GeneratedApp {
    AppBuilder::new("shop.acme")
        .meta("Shopping", 5_000_000)
        .activity(
            ActivitySpec::new("Storefront")
                .launcher()
                .tabs(["CatalogFragment", "DealsFragment"])
                .initial_fragment("CatalogFragment")
                .with_popup_menu()
                .api("internet", "connect"),
        )
        .activity(ActivitySpec::new("Cart").pane("CartItemsFragment").pane("SummaryFragment").gate(
            GatedLink { target: "Checkout".into(), secret: "12 Main St".into(), input_known: true },
        ))
        .activity(
            ActivitySpec::new("Checkout")
                .requires_extra("session")
                .api("identification", "getString"),
        )
        .fragment(
            FragmentSpec::new("CatalogFragment")
                .api("internet", "InetAddress.getByName")
                .link_to("Cart")
                .switch_to("DealsFragment"),
        )
        .fragment(FragmentSpec::new("DealsFragment").api("location", "isProviderEnabled"))
        .fragment(FragmentSpec::new("CartItemsFragment").api("storage", "open"))
        .fragment(FragmentSpec::new("SummaryFragment"))
        .build()
}

/// A news-reader app: a drawer of section fragments, one of which embeds a
/// WebView whose code calls the `view/*` sensitive APIs, plus a strict
/// search gate nobody provided a value for (the Weather-style blocker).
pub fn news_reader() -> GeneratedApp {
    AppBuilder::new("news.daily")
        .meta("News Magazine", 10_000_000)
        .activity(
            ActivitySpec::new("Front")
                .launcher()
                .initial_fragment("HeadlinesFragment")
                .drawer(["HeadlinesFragment", "PoliticsFragment", "WebFragment"])
                .gate(GatedLink {
                    target: "Archive".into(),
                    secret: "March 14, 2018".into(),
                    input_known: false,
                }),
        )
        .activity(ActivitySpec::new("Archive").requires_extra("date"))
        .fragment(FragmentSpec::new("HeadlinesFragment").api("internet", "inet"))
        .fragment(FragmentSpec::new("PoliticsFragment").api("phone", "Configuration.MCC"))
        .fragment(
            FragmentSpec::new("WebFragment")
                .with_webview()
                .api("view", "loadUrl")
                .api("view", "getUserAgentString"),
        )
        .build()
}

/// A suite of apps where each of FragDroid's mechanisms is load-bearing,
/// used by the ablation benchmark:
///
/// * `abl.reflection` — fragments referenced only from dead code with
///   default constructors: only the reflection mechanism reaches them;
/// * `abl.forcestart` — activities behind unknown-input gates *without*
///   required extras: only the forced-start phase reaches them;
/// * `abl.inputs` — a chain of known-secret login gates: only the
///   input-dependency file opens them (the gated targets require intent
///   extras, so forced starts cannot substitute);
/// * `abl.hinted` — a gate whose secret the UI itself leaks: only the
///   §VIII input-harvesting extension opens it.
pub fn ablation_suite() -> Vec<GeneratedApp> {
    let reflection = AppBuilder::new("abl.reflection")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("Visible")
                .hidden_fragment("HiddenA")
                .hidden_fragment("HiddenB")
                .button_to("Second"),
        )
        .activity(ActivitySpec::new("Second").hidden_fragment("HiddenC"))
        .fragment(FragmentSpec::new("Visible").api("internet", "connect"))
        .fragment(FragmentSpec::new("HiddenA").api("location", "getProviders"))
        .fragment(FragmentSpec::new("HiddenB").api("media", "Camera.startPreview"))
        .fragment(FragmentSpec::new("HiddenC").api("storage", "open"))
        .build();

    // Gates from Main with unknown secrets; the targets require NO
    // extras, so the §VI-C forced start succeeds where clicking cannot.
    let mut locked_main = ActivitySpec::new("Main").launcher().api("phone", "getDeviceId");
    for i in 0..3 {
        locked_main = locked_main.gate(GatedLink {
            target: format!("Locked{i}"),
            secret: format!("unknown-{i}"),
            input_known: false,
        });
    }
    let mut forcestart = AppBuilder::new("abl.forcestart").activity(locked_main);
    for i in 0..3 {
        forcestart = forcestart
            .activity(ActivitySpec::new(format!("Locked{i}")).api("identification", "SERIAL"));
    }
    let forcestart = forcestart.build();

    let inputs = AppBuilder::new("abl.inputs")
        .activity(ActivitySpec::new("Login").launcher().gate(GatedLink {
            target: "Inbox".into(),
            secret: "user@example.com".into(),
            input_known: true,
        }))
        .activity(
            ActivitySpec::new("Inbox").requires_extra("session").initial_fragment("MailList").gate(
                GatedLink { target: "Admin".into(), secret: "admin-pin".into(), input_known: true },
            ),
        )
        .activity(ActivitySpec::new("Admin").requires_extra("session"))
        .fragment(FragmentSpec::new("MailList").api("messages", "MmsProvider"))
        .build();

    let hinted = AppBuilder::new("abl.hinted")
        .activity(ActivitySpec::new("Main").launcher().hinted_gate(GatedLink {
            target: "Vault".into(),
            secret: "beta-invite-7731".into(),
            input_known: false,
        }))
        .activity(
            ActivitySpec::new("Vault").requires_extra("invite").api("identification", "/proc"),
        )
        .build();

    vec![reflection, forcestart, inputs, hinted, quickstart()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_droidsim::{Device, EventOutcome};

    #[test]
    fn fig1_tab_click_is_fragment_level_only() {
        let mut d = Device::new(tabbed_categories().app);
        d.launch().unwrap();
        let before = d.signature().unwrap();
        let out = d.click("tab_recentfragment").unwrap();
        let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
        // The activity is unchanged; only the fragment switched.
        assert!(before.fragment_level_change(&to));
    }

    #[test]
    fn fig2_fragments_bridged_only_by_drawer() {
        let mut d = Device::new(nav_drawer_wallpapers().app);
        d.launch().unwrap();
        // The favorites entry is invisible until the drawer opens.
        assert!(d.current().unwrap().visible_widget("menu_favoritesfragment").is_none());
        d.click("hamburger_gallery").unwrap();
        let out = d.click("menu_favoritesfragment").unwrap();
        assert!(out.changed_ui());
        assert_eq!(
            d.signature().unwrap().fragments["content_gallery"].as_str(),
            "fig2.wallpapers.FavoritesFragment"
        );
    }

    #[test]
    fn quickstart_full_flow() {
        let gen = quickstart();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        d.click("btn_settings").unwrap();
        let field = "input_settings_0";
        d.enter_text(field, gen.known_inputs[field].as_str()).unwrap();
        let out = d.click("submit_settings_0").unwrap();
        // The gate supplies the required extra, so Account starts.
        assert!(matches!(out, EventOutcome::UiChanged { ref to, .. }
            if to.activity.as_str() == "com.example.quickstart.Account"));
    }
}

#[cfg(test)]
mod domain_template_tests {
    use super::*;
    use fd_droidsim::Device;

    #[test]
    fn ecommerce_multi_pane_cart_and_gated_checkout() {
        let gen = ecommerce();
        let mut d = Device::new(gen.app.clone());
        d.launch().unwrap();
        // Into the cart through the catalog fragment's button.
        d.click("fbtn_catalogfragment_cart").unwrap();
        let sig = d.signature().unwrap();
        assert_eq!(sig.activity.as_str(), "shop.acme.Cart");
        assert_eq!(sig.fragments.len(), 2, "items + summary panes: {sig}");
        // The checkout gate opens with the known address.
        d.enter_text("input_cart_0", "12 Main St").unwrap();
        let out = d.click("submit_cart_0").unwrap();
        assert!(matches!(out, fd_droidsim::EventOutcome::UiChanged { ref to, .. }
            if to.activity.as_str() == "shop.acme.Checkout"));
    }

    #[test]
    fn news_reader_webview_apis_fire_from_drawer_fragment() {
        let gen = news_reader();
        let mut d = Device::new(gen.app.clone());
        d.launch().unwrap();
        d.click("hamburger_front").unwrap();
        d.click("menu_webfragment").unwrap();
        assert!(d.invocations().any(|i| i.group == "view" && i.name == "loadUrl"));
        // The archive gate's secret is unknown: junk input shows a dialog.
        d.enter_text("input_front_0", "yesterday").unwrap();
        let out = d.click("submit_front_0").unwrap();
        assert_eq!(out, fd_droidsim::EventOutcome::OverlayShown);
    }
}
