//! The declarative app builder.
//!
//! Specifications are written in terms of UI features (drawers, tabs,
//! gates, links); [`AppBuilder::build`] lowers them to a complete
//! [`AndroidApp`]: manifest declarations, layout widget trees, and
//! executable smali classes wired with click handlers.

use fd_apk::{
    ActivityDecl, AndroidApp, AppMeta, IntentFilter, Layout, Manifest, Widget, WidgetKind,
};
use fd_smali::{
    well_known, ClassDef, ClassName, Cond, IntentTarget, MethodDef, MethodName, ResRef, Stmt,
};
use std::collections::BTreeMap;

/// An input-gated activity link: an `EditText` plus a submit button whose
/// handler starts `target` only when the field holds `secret`.
///
/// When `input_known` is true the secret ends up in the app's
/// input-dependency data (the file analysts fill "with correct values in
/// advance", §V-C); when false the gate models the paper's untestable
/// strict inputs (*com.weather.Weather*'s place names).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatedLink {
    /// Target activity (simple name).
    pub target: String,
    /// The exact input that opens the gate.
    pub secret: String,
    /// Whether the input-dependency file knows the secret.
    pub input_known: bool,
}

/// A fragment specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FragmentSpec {
    /// Simple class name, e.g. `NewsFragment`.
    pub name: String,
    /// Sensitive APIs called in `onCreateView`.
    pub apis: Vec<(String, String)>,
    /// Activities (simple names) started by buttons in this fragment
    /// (via `getActivity().startActivity(..)`).
    pub links_to: Vec<String>,
    /// Fragments (simple names) this fragment can switch to with a button
    /// — the `F → Fᵢ` edge.
    pub switches_to: Vec<String>,
    /// Whether the only constructor takes parameters (defeats reflection —
    /// the *zara* failure).
    pub ctor_args: bool,
    /// Whether the layout embeds a `WebView` (the embedded-content threat
    /// surface the paper's §IX calls out in fragments).
    pub webview: bool,
    /// Number of filler (non-interactive) widgets in the layout.
    pub extra_widgets: usize,
}

impl FragmentSpec {
    /// A plain fragment.
    pub fn new(name: impl Into<String>) -> Self {
        FragmentSpec { name: name.into(), ..Default::default() }
    }

    /// Adds a sensitive-API call (builder style).
    pub fn api(mut self, group: &str, name: &str) -> Self {
        self.apis.push((group.to_string(), name.to_string()));
        self
    }

    /// Adds a button starting an activity (builder style).
    pub fn link_to(mut self, target: impl Into<String>) -> Self {
        self.links_to.push(target.into());
        self
    }

    /// Adds a button switching to a sibling fragment (builder style).
    pub fn switch_to(mut self, target: impl Into<String>) -> Self {
        self.switches_to.push(target.into());
        self
    }

    /// Marks the constructor as parameterized (builder style).
    pub fn ctor_requires_args(mut self) -> Self {
        self.ctor_args = true;
        self
    }

    /// Embeds a WebView in the layout (builder style).
    pub fn with_webview(mut self) -> Self {
        self.webview = true;
        self
    }
}

/// An activity specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActivitySpec {
    /// Simple class name, e.g. `MainActivity`.
    pub name: String,
    /// Whether this is the launcher activity.
    pub launcher: bool,
    /// Fragment attached in `onCreate` through the `FragmentManager`.
    pub initial_fragment: Option<String>,
    /// Fragments reachable only through the hidden navigation drawer
    /// (Fig. 2) — a hamburger button opens the drawer, items switch.
    pub drawer_fragments: Vec<String>,
    /// Fragments switched by an always-visible tab strip (Fig. 1).
    pub tab_fragments: Vec<String>,
    /// Fragments attached *without* a `FragmentManager` (the *dubsmash*
    /// failure: loading FragDroid cannot confirm).
    pub direct_fragments: Vec<String>,
    /// Additional fragments shown side by side in their own containers —
    /// the multi-pane UI of the paper's §II-B ("combine multiple
    /// Fragments in a single Activity to build a multi-pane UI").
    pub panes: Vec<String>,
    /// Buttons starting other activities by explicit intent.
    pub buttons_to: Vec<String>,
    /// Buttons starting activities by implicit action; the target gets a
    /// matching intent filter.
    pub action_links: Vec<(String, String)>,
    /// Input-gated links: each adds an `EditText` + submit button.
    pub gates: Vec<GatedLink>,
    /// Secrets the app leaks in its own UI (a `TextView` whose text is the
    /// credential) — the target of the input-harvesting extension (§VIII's
    /// "better input generation methods").
    pub hinted_secrets: Vec<String>,
    /// Fragments referenced only from *dead code* (a switch method no
    /// widget triggers). Static analysis sees the dependency and the
    /// reflection mechanism can reach them, but no click path exists —
    /// the hidden switches of the paper's Challenge 2.
    pub hidden_fragments: Vec<String>,
    /// Whether a button pops a modal dialog.
    pub dialog: bool,
    /// Whether an action-bar button pops a menu (the flows that "interrupt
    /// normal test case generation").
    pub popup_menu: bool,
    /// Sensitive APIs called in `onCreate`.
    pub apis: Vec<(String, String)>,
    /// An intent extra `onCreate` requires (FCs without it — defeats the
    /// empty-intent forced start).
    pub requires_extra: Option<String>,
    /// A permission `onCreate` requires (FCs when denied).
    pub requires_permission: Option<String>,
    /// Number of filler widgets.
    pub extra_widgets: usize,
}

impl ActivitySpec {
    /// A plain activity.
    pub fn new(name: impl Into<String>) -> Self {
        ActivitySpec { name: name.into(), ..Default::default() }
    }

    /// Marks as launcher (builder style).
    pub fn launcher(mut self) -> Self {
        self.launcher = true;
        self
    }

    /// Sets the fragment attached in `onCreate` (builder style).
    pub fn initial_fragment(mut self, f: impl Into<String>) -> Self {
        self.initial_fragment = Some(f.into());
        self
    }

    /// Adds hidden-drawer fragments (builder style).
    pub fn drawer(mut self, fragments: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.drawer_fragments.extend(fragments.into_iter().map(Into::into));
        self
    }

    /// Adds tab-strip fragments (builder style).
    pub fn tabs(mut self, fragments: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.tab_fragments.extend(fragments.into_iter().map(Into::into));
        self
    }

    /// Adds a direct-attached fragment (builder style).
    pub fn direct_fragment(mut self, f: impl Into<String>) -> Self {
        self.direct_fragments.push(f.into());
        self
    }

    /// Adds a side-by-side pane fragment (builder style).
    pub fn pane(mut self, f: impl Into<String>) -> Self {
        self.panes.push(f.into());
        self
    }

    /// Adds an explicit-intent button (builder style).
    pub fn button_to(mut self, target: impl Into<String>) -> Self {
        self.buttons_to.push(target.into());
        self
    }

    /// Adds an implicit-intent button (builder style).
    pub fn action_link(mut self, action: impl Into<String>, target: impl Into<String>) -> Self {
        self.action_links.push((action.into(), target.into()));
        self
    }

    /// Adds an input gate (builder style).
    pub fn gate(mut self, gate: GatedLink) -> Self {
        self.gates.push(gate);
        self
    }

    /// Adds a hidden (dead-code-referenced) fragment (builder style).
    pub fn hidden_fragment(mut self, f: impl Into<String>) -> Self {
        self.hidden_fragments.push(f.into());
        self
    }

    /// Adds a gate whose secret the UI itself leaks (builder style): the
    /// layout gains a `TextView` showing the secret verbatim, so a
    /// string-harvesting input generator can find it.
    pub fn hinted_gate(mut self, gate: GatedLink) -> Self {
        self.hinted_secrets.push(gate.secret.clone());
        self.gates.push(gate);
        self
    }

    /// Adds a dialog button (builder style).
    pub fn with_dialog(mut self) -> Self {
        self.dialog = true;
        self
    }

    /// Adds an action-bar popup (builder style).
    pub fn with_popup_menu(mut self) -> Self {
        self.popup_menu = true;
        self
    }

    /// Adds a sensitive-API call (builder style).
    pub fn api(mut self, group: &str, name: &str) -> Self {
        self.apis.push((group.to_string(), name.to_string()));
        self
    }

    /// Requires an intent extra (builder style).
    pub fn requires_extra(mut self, key: impl Into<String>) -> Self {
        self.requires_extra = Some(key.into());
        self
    }

    /// Requires a permission (builder style).
    pub fn requires_permission(mut self, p: impl Into<String>) -> Self {
        self.requires_permission = Some(p.into());
        self
    }
}

/// The output of [`AppBuilder::build`]: the app plus the values that would
/// populate FragDroid's input-dependency file.
#[derive(Clone, Debug)]
pub struct GeneratedApp {
    /// The complete app.
    pub app: AndroidApp,
    /// `widget resource-ID → correct input` for every known gate.
    pub known_inputs: BTreeMap<String, String>,
}

/// Builds whole apps from activity/fragment specifications.
#[derive(Clone, Debug, Default)]
pub struct AppBuilder {
    package: String,
    meta: AppMeta,
    activities: Vec<ActivitySpec>,
    fragments: Vec<FragmentSpec>,
}

impl AppBuilder {
    /// Starts an app for `package`.
    pub fn new(package: impl Into<String>) -> Self {
        AppBuilder { package: package.into(), ..Default::default() }
    }

    /// Sets store metadata (builder style).
    pub fn meta(mut self, category: &str, downloads: u64) -> Self {
        self.meta.category = category.to_string();
        self.meta.downloads = downloads;
        self
    }

    /// Marks the app packer-protected (builder style).
    pub fn packed(mut self) -> Self {
        self.meta.packed = true;
        self
    }

    /// Adds an activity (builder style).
    pub fn activity(mut self, spec: ActivitySpec) -> Self {
        self.activities.push(spec);
        self
    }

    /// Adds a fragment (builder style).
    pub fn fragment(mut self, spec: FragmentSpec) -> Self {
        self.fragments.push(spec);
        self
    }

    fn qualify(&self, simple: &str) -> ClassName {
        ClassName::new(format!("{}.{}", self.package, simple))
    }

    /// The container resource-ID an activity hosts fragments in.
    fn container_id(activity: &str) -> String {
        format!("content_{}", activity.to_lowercase())
    }

    /// Finds the first activity hosting `fragment` (for fragment-initiated
    /// switches, which need the container's resource-ID).
    fn host_of(&self, fragment: &str) -> Option<&ActivitySpec> {
        self.activities.iter().find(|a| {
            a.initial_fragment.as_deref() == Some(fragment)
                || a.drawer_fragments.iter().any(|f| f == fragment)
                || a.tab_fragments.iter().any(|f| f == fragment)
                || a.direct_fragments.iter().any(|f| f == fragment)
                || a.hidden_fragments.iter().any(|f| f == fragment)
                || a.panes.iter().any(|f| f == fragment)
        })
    }

    /// Lowers the specification to a complete, validated app.
    ///
    /// # Panics
    ///
    /// Panics if the produced app fails [`AndroidApp::validate`] — that is
    /// a bug in the specification (e.g. a link to an undeclared activity).
    /// Use [`AppBuilder::try_build`] to get the problems as an error
    /// instead.
    pub fn build(self) -> GeneratedApp {
        match self.try_build() {
            Ok(gen) => gen,
            Err(problems) => panic!("generated app is malformed: {problems:?}"),
        }
    }

    /// Like [`AppBuilder::build`], but reports specification problems as
    /// an error instead of panicking.
    pub fn try_build(self) -> Result<GeneratedApp, Vec<String>> {
        let mut manifest = Manifest::new(self.package.clone());
        let mut known_inputs = BTreeMap::new();

        // Manifest: declarations + intent filters for action links.
        for spec in &self.activities {
            let mut decl = ActivityDecl::new(self.qualify(&spec.name));
            if spec.launcher {
                decl = decl.launcher();
            }
            for other in &self.activities {
                for (action, target) in &other.action_links {
                    if target == &spec.name {
                        decl = decl.with_filter(IntentFilter::for_action(action.clone()));
                    }
                }
            }
            manifest.activities.push(decl);
            if let Some(p) = &spec.requires_permission {
                if !manifest.permissions.contains(p) {
                    manifest.permissions.push(p.clone());
                }
            }
        }

        let mut app = AndroidApp::new(manifest);
        app.meta = self.meta.clone();

        for spec in &self.activities {
            let (class, layout) = self.lower_activity(spec, &mut known_inputs);
            app.layouts.insert(layout.name.clone(), layout);
            app.classes.insert(class);
        }
        for spec in &self.fragments {
            let (class, layout) = self.lower_fragment(spec);
            app.layouts.insert(layout.name.clone(), layout);
            app.classes.insert(class);
        }

        app.finalize_resources();
        let problems = app.validate();
        if problems.is_empty() {
            Ok(GeneratedApp { app, known_inputs })
        } else {
            Err(problems)
        }
    }

    fn lower_activity(
        &self,
        spec: &ActivitySpec,
        known_inputs: &mut BTreeMap<String, String>,
    ) -> (ClassDef, Layout) {
        let lname = spec.name.to_lowercase();
        let layout_name = format!("lay_{lname}");
        let container = Self::container_id(&spec.name);
        let uses_manager = spec.initial_fragment.is_some()
            || !spec.drawer_fragments.is_empty()
            || !spec.tab_fragments.is_empty()
            || !spec.hidden_fragments.is_empty()
            || !spec.panes.is_empty();
        let has_container = uses_manager || !spec.direct_fragments.is_empty();

        // ---- layout ----
        let mut root = Widget::new(WidgetKind::Group).with_id(format!("root_{lname}"));
        let mut on_create = MethodDef::new("onCreate");
        let mut handlers: Vec<MethodDef> = Vec::new();

        // Hard requirements come first (before setContentView, like real
        // permission/extra guards at the top of onCreate).
        if let Some(key) = &spec.requires_extra {
            on_create = on_create.push(Stmt::RequireExtra { key: key.clone() });
        }
        if let Some(p) = &spec.requires_permission {
            on_create = on_create.push(Stmt::RequirePermission { permission: p.clone() });
        }
        on_create = on_create.push(Stmt::SetContentView(ResRef::layout(layout_name.clone())));
        for (group, name) in &spec.apis {
            on_create =
                on_create.push(Stmt::InvokeApi { group: group.clone(), name: name.clone() });
        }

        if spec.popup_menu {
            let id = format!("appbar_more_{lname}");
            root = root.with_child(Widget::new(WidgetKind::ActionBar).with_child(
                Widget::new(WidgetKind::ImageButton).with_id(id.clone()).with_text("⋮"),
            ));
            let h = format!("onMore{}", spec.name);
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            handlers
                .push(MethodDef::new(h).push(Stmt::ShowPopupMenu { id: format!("menu_{lname}") }));
        }

        if !spec.tab_fragments.is_empty() {
            let mut bar = Widget::new(WidgetKind::TabBar).with_id(format!("tabs_{lname}"));
            for frag in &spec.tab_fragments {
                let id = format!("tab_{}", frag.to_lowercase());
                bar = bar.with_child(
                    Widget::new(WidgetKind::Button).with_id(id.clone()).with_text(frag.clone()),
                );
                let h = format!("onTab{frag}");
                on_create = on_create.push(Stmt::SetOnClick {
                    widget: ResRef::id(id),
                    handler: MethodName::new(h.clone()),
                });
                handlers.push(
                    MethodDef::new(h)
                        .push(Stmt::GetFragmentManager { support: true })
                        .push(Stmt::BeginTransaction)
                        .push(Stmt::TxnReplace {
                            container: ResRef::id(container.clone()),
                            fragment: self.qualify(frag),
                        })
                        .push(Stmt::TxnCommit),
                );
            }
            root = root.with_child(bar);
        }

        if !spec.drawer_fragments.is_empty() {
            let hamburger = format!("hamburger_{lname}");
            root = root.with_child(
                Widget::new(WidgetKind::ImageButton).with_id(hamburger.clone()).with_text("≡"),
            );
            let drawer_id = format!("drawer_{lname}");
            let mut drawer = Widget::new(WidgetKind::Drawer).with_id(drawer_id.clone());
            let h = format!("onDrawerToggle{}", spec.name);
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(hamburger),
                handler: MethodName::new(h.clone()),
            });
            handlers.push(
                MethodDef::new(h)
                    .push(Stmt::ToggleDrawer { drawer: ResRef::id(drawer_id.clone()) }),
            );
            for frag in &spec.drawer_fragments {
                let id = format!("menu_{}", frag.to_lowercase());
                drawer = drawer.with_child(
                    Widget::new(WidgetKind::TextView)
                        .with_id(id.clone())
                        .with_text(frag.clone())
                        .clickable(true),
                );
                let h = format!("onMenu{frag}");
                on_create = on_create.push(Stmt::SetOnClick {
                    widget: ResRef::id(id),
                    handler: MethodName::new(h.clone()),
                });
                handlers.push(
                    MethodDef::new(h)
                        .push(Stmt::GetFragmentManager { support: true })
                        .push(Stmt::BeginTransaction)
                        .push(Stmt::TxnReplace {
                            container: ResRef::id(container.clone()),
                            fragment: self.qualify(frag),
                        })
                        .push(Stmt::TxnCommit)
                        .push(Stmt::ToggleDrawer { drawer: ResRef::id(drawer_id.clone()) }),
                );
            }
            root = root.with_child(drawer);
        }

        for target in &spec.buttons_to {
            let id = format!("btn_{}", target.to_lowercase());
            root = root.with_child(
                Widget::new(WidgetKind::Button).with_id(id.clone()).with_text(target.clone()),
            );
            let h = format!("onGo{target}");
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            let mut handler =
                MethodDef::new(h).push(Stmt::NewIntent(IntentTarget::Class(self.qualify(target))));
            // The app's own code supplies any extras the target requires.
            if let Some(tspec) = self.activities.iter().find(|a| &a.name == target) {
                if let Some(key) = &tspec.requires_extra {
                    handler = handler.push(Stmt::PutExtra { key: key.clone(), value: "1".into() });
                }
            }
            handlers.push(handler.push(Stmt::StartActivity { via_host: false }));
        }

        for (action, target) in &spec.action_links {
            let id = format!("act_{}", target.to_lowercase());
            root = root.with_child(
                Widget::new(WidgetKind::Button).with_id(id.clone()).with_text(action.clone()),
            );
            let h = format!("onAction{target}");
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            handlers.push(
                MethodDef::new(h)
                    .push(Stmt::NewIntent(IntentTarget::Action(action.clone())))
                    .push(Stmt::StartActivity { via_host: false }),
            );
        }

        for (gate_idx, gate) in spec.gates.iter().enumerate() {
            let field = format!("input_{lname}_{gate_idx}");
            let submit = format!("submit_{lname}_{gate_idx}");
            root = root
                .with_child(Widget::new(WidgetKind::EditText).with_id(field.clone()))
                .with_child(
                    Widget::new(WidgetKind::Button).with_id(submit.clone()).with_text("Submit"),
                );
            if gate.input_known {
                known_inputs.insert(field.clone(), gate.secret.clone());
            }
            let h = format!("onSubmit{}{gate_idx}", spec.name);
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(submit),
                handler: MethodName::new(h.clone()),
            });
            let mut then = vec![Stmt::NewIntent(IntentTarget::Class(self.qualify(&gate.target)))];
            if let Some(tspec) = self.activities.iter().find(|a| a.name == gate.target) {
                if let Some(key) = &tspec.requires_extra {
                    then.push(Stmt::PutExtra { key: key.clone(), value: "1".into() });
                }
            }
            then.push(Stmt::StartActivity { via_host: false });
            handlers.push(MethodDef::new(h).push(Stmt::If {
                cond: Cond::InputEquals { field: ResRef::id(field), expected: gate.secret.clone() },
                then,
                els: vec![Stmt::ShowDialog { id: "invalid input".into() }],
            }));
        }

        if spec.dialog {
            let id = format!("dlg_{lname}");
            root = root
                .with_child(Widget::new(WidgetKind::Button).with_id(id.clone()).with_text("Info"));
            let h = format!("onInfo{}", spec.name);
            on_create = on_create.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            handlers.push(MethodDef::new(h).push(Stmt::ShowDialog { id: format!("info_{lname}") }));
        }

        for (i, secret) in spec.hinted_secrets.iter().enumerate() {
            root = root.with_child(
                Widget::new(WidgetKind::TextView)
                    .with_id(format!("hint_{lname}_{i}"))
                    .with_text(secret.clone()),
            );
        }
        for i in 0..spec.extra_widgets {
            root =
                root.with_child(Widget::new(WidgetKind::TextView).with_text(format!("label {i}")));
        }

        if has_container {
            root = root
                .with_child(Widget::new(WidgetKind::FragmentContainer).with_id(container.clone()));
        }
        for (i, _) in spec.panes.iter().enumerate() {
            root = root.with_child(
                Widget::new(WidgetKind::FragmentContainer).with_id(format!("pane{i}_{lname}")),
            );
        }

        // Fragment attachment goes last in onCreate so handlers are wired.
        if let Some(frag) = &spec.initial_fragment {
            on_create = on_create
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::BeginTransaction)
                .push(Stmt::TxnAdd {
                    container: ResRef::id(container.clone()),
                    fragment: self.qualify(frag),
                })
                .push(Stmt::TxnCommit);
        } else if uses_manager {
            // Drawer/tab activities still reference the manager in code
            // (reflection relies on seeing it).
            on_create = on_create.push(Stmt::GetFragmentManager { support: true });
        }
        for frag in &spec.direct_fragments {
            on_create = on_create.push(Stmt::AttachDirect {
                container: ResRef::id(container.clone()),
                fragment: self.qualify(frag),
            });
        }
        if !spec.panes.is_empty() {
            on_create = on_create
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::BeginTransaction);
            for (i, frag) in spec.panes.iter().enumerate() {
                on_create = on_create.push(Stmt::TxnAdd {
                    container: ResRef::id(format!("pane{i}_{lname}")),
                    fragment: self.qualify(frag),
                });
            }
            on_create = on_create.push(Stmt::TxnCommit);
        }
        // Hidden fragments: a switch method exists in the code (so the
        // static dependency is visible and reflection finds a container),
        // but no widget is wired to it.
        for frag in &spec.hidden_fragments {
            handlers.push(
                MethodDef::new(format!("show{frag}"))
                    .push(Stmt::GetFragmentManager { support: true })
                    .push(Stmt::BeginTransaction)
                    .push(Stmt::TxnReplace {
                        container: ResRef::id(container.clone()),
                        fragment: self.qualify(frag),
                    })
                    .push(Stmt::TxnCommit),
            );
        }

        let mut class =
            ClassDef::new(self.qualify(&spec.name), well_known::ACTIVITY).with_method(on_create);
        for h in handlers {
            class = class.with_method(h);
        }
        (class, Layout::new(layout_name, root))
    }

    fn lower_fragment(&self, spec: &FragmentSpec) -> (ClassDef, Layout) {
        let lname = spec.name.to_lowercase();
        let layout_name = format!("lay_frag_{lname}");
        let mut root = Widget::new(WidgetKind::Group).with_id(format!("frag_root_{lname}"));
        let mut on_create_view = MethodDef::new("onCreateView")
            .push(Stmt::InflateLayout(ResRef::layout(layout_name.clone())));
        for (group, name) in &spec.apis {
            on_create_view =
                on_create_view.push(Stmt::InvokeApi { group: group.clone(), name: name.clone() });
        }
        let mut handlers: Vec<MethodDef> = Vec::new();

        for target in &spec.links_to {
            let id = format!("fbtn_{lname}_{}", target.to_lowercase());
            root = root.with_child(
                Widget::new(WidgetKind::Button).with_id(id.clone()).with_text(target.clone()),
            );
            let h = format!("onGo{target}");
            on_create_view = on_create_view.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            let mut handler =
                MethodDef::new(h).push(Stmt::NewIntent(IntentTarget::Class(self.qualify(target))));
            if let Some(tspec) = self.activities.iter().find(|a| &a.name == target) {
                if let Some(key) = &tspec.requires_extra {
                    handler = handler.push(Stmt::PutExtra { key: key.clone(), value: "1".into() });
                }
            }
            handlers.push(handler.push(Stmt::StartActivity { via_host: true }));
        }

        for target in &spec.switches_to {
            let id = format!("fswitch_{lname}_{}", target.to_lowercase());
            root = root.with_child(
                Widget::new(WidgetKind::Button).with_id(id.clone()).with_text(target.clone()),
            );
            let h = format!("onSwitch{target}");
            on_create_view = on_create_view.push(Stmt::SetOnClick {
                widget: ResRef::id(id),
                handler: MethodName::new(h.clone()),
            });
            let container = self
                .host_of(&spec.name)
                .map(|a| Self::container_id(&a.name))
                .unwrap_or_else(|| "content".to_string());
            handlers.push(
                MethodDef::new(h)
                    .push(Stmt::GetFragmentManager { support: true })
                    .push(Stmt::BeginTransaction)
                    .push(Stmt::TxnReplace {
                        container: ResRef::id(container),
                        fragment: self.qualify(target),
                    })
                    .push(Stmt::TxnCommit),
            );
        }

        if spec.webview {
            root =
                root.with_child(Widget::new(WidgetKind::WebView).with_id(format!("web_{lname}")));
        }
        for i in 0..spec.extra_widgets {
            root = root.with_child(Widget::new(WidgetKind::TextView).with_text(format!("row {i}")));
        }

        let mut class = ClassDef::new(self.qualify(&spec.name), well_known::SUPPORT_FRAGMENT)
            .with_method(on_create_view);
        if spec.ctor_args {
            class = class
                .with_method(MethodDef::new(MethodName::ctor()).with_param("java.lang.String"));
        }
        for h in handlers {
            class = class.with_method(h);
        }
        (class, Layout::new(layout_name, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_droidsim::{Device, EventOutcome};

    fn two_screen_app() -> GeneratedApp {
        AppBuilder::new("gen.demo")
            .meta("Tools", 50_000)
            .activity(
                ActivitySpec::new("Main")
                    .launcher()
                    .initial_fragment("Home")
                    .drawer(["Feed"])
                    .button_to("Second")
                    .with_dialog(),
            )
            .activity(ActivitySpec::new("Second").requires_extra("id"))
            .fragment(FragmentSpec::new("Home").api("internet", "connect").switch_to("Feed"))
            .fragment(FragmentSpec::new("Feed").link_to("Second"))
            .build()
    }

    #[test]
    fn built_app_validates_and_runs() {
        let gen = two_screen_app();
        let mut d = Device::new(gen.app);
        let out = d.launch().unwrap();
        assert!(out.changed_ui());
        let sig = d.signature().unwrap();
        assert_eq!(sig.activity.as_str(), "gen.demo.Main");
        assert_eq!(sig.fragments["content_main"].as_str(), "gen.demo.Home");
    }

    #[test]
    fn drawer_flow_switches_fragment() {
        let gen = two_screen_app();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        d.click("hamburger_main").unwrap();
        let out = d.click("menu_feed").unwrap();
        let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
        assert_eq!(to.fragments["content_main"].as_str(), "gen.demo.Feed");
    }

    #[test]
    fn fragment_switch_button_performs_e3_transition() {
        let gen = two_screen_app();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        let out = d.click("fswitch_home_feed").unwrap();
        let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
        assert_eq!(to.fragments["content_main"].as_str(), "gen.demo.Feed");
    }

    #[test]
    fn button_supplies_required_extras() {
        let gen = two_screen_app();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        // The generated handler put-extras "id", so Second starts cleanly.
        let out = d.click("btn_second").unwrap();
        let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
        assert_eq!(to.activity.as_str(), "gen.demo.Second");
    }

    #[test]
    fn known_gate_secrets_are_exported() {
        let gen = AppBuilder::new("gen.gated")
            .activity(ActivitySpec::new("Login").launcher().gate(GatedLink {
                target: "Inside".into(),
                secret: "s3cret".into(),
                input_known: true,
            }))
            .activity(ActivitySpec::new("Inside"))
            .build();
        assert_eq!(gen.known_inputs.get("input_login_0").map(String::as_str), Some("s3cret"));

        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        d.enter_text("input_login_0", "s3cret").unwrap();
        let out = d.click("submit_login_0").unwrap();
        assert!(
            matches!(out, EventOutcome::UiChanged { ref to, .. } if to.activity.as_str() == "gen.gated.Inside")
        );
    }

    #[test]
    fn unknown_gate_secrets_are_not_exported() {
        let gen = AppBuilder::new("gen.gated")
            .activity(ActivitySpec::new("Login").launcher().gate(GatedLink {
                target: "Inside".into(),
                secret: "place name".into(),
                input_known: false,
            }))
            .activity(ActivitySpec::new("Inside"))
            .build();
        assert!(gen.known_inputs.is_empty());
    }

    #[test]
    fn action_links_get_intent_filters() {
        let gen = AppBuilder::new("gen.act")
            .activity(ActivitySpec::new("Main").launcher().action_link("gen.act.VIEW", "Viewer"))
            .activity(ActivitySpec::new("Viewer"))
            .build();
        let decl = gen.app.manifest.activity("gen.act.Viewer").unwrap();
        assert!(decl.handles_action("gen.act.VIEW"));

        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        let out = d.click("act_viewer").unwrap();
        assert!(
            matches!(out, EventOutcome::UiChanged { ref to, .. } if to.activity.as_str() == "gen.act.Viewer")
        );
    }

    #[test]
    fn popup_menu_interrupts() {
        let gen = AppBuilder::new("gen.pop")
            .activity(ActivitySpec::new("Main").launcher().with_popup_menu())
            .build();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        let out = d.click("appbar_more_main").unwrap();
        assert_eq!(out, EventOutcome::OverlayShown);
    }

    #[test]
    fn direct_fragments_attach_without_manager() {
        let gen = AppBuilder::new("gen.direct")
            .activity(ActivitySpec::new("Main").launcher().direct_fragment("Raw"))
            .fragment(FragmentSpec::new("Raw"))
            .build();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        let pane = &d.current().unwrap().fragments["content_main"];
        assert!(!pane.via_manager);
    }
}

#[cfg(test)]
mod pane_tests {
    use super::*;
    use fd_droidsim::Device;

    #[test]
    fn multi_pane_activity_attaches_all_panes_at_once() {
        // The paper's §II-B multi-pane UI: a master list and a detail
        // pane, side by side in one activity.
        let gen = AppBuilder::new("gen.tablet")
            .activity(ActivitySpec::new("Browse").launcher().pane("MasterList").pane("Detail"))
            .fragment(FragmentSpec::new("MasterList").api("internet", "connect"))
            .fragment(FragmentSpec::new("Detail").api("storage", "open"))
            .build();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        let sig = d.signature().unwrap();
        assert_eq!(sig.fragments.len(), 2, "both panes attached: {sig}");
        assert_eq!(sig.fragments["pane0_browse"].as_str(), "gen.tablet.MasterList");
        assert_eq!(sig.fragments["pane1_browse"].as_str(), "gen.tablet.Detail");
        // Both panes' widgets are on screen simultaneously.
        assert!(d.current().unwrap().visible_widget("frag_root_masterlist").is_some());
        assert!(d.current().unwrap().visible_widget("frag_root_detail").is_some());
    }

    #[test]
    fn fragment_reused_across_two_activities() {
        // "reuse one Fragment across multiple Activities" (§II-B): the
        // same fragment class hosted by two activities; API attribution
        // distinguishes the hosts.
        let gen = AppBuilder::new("gen.reuse")
            .activity(
                ActivitySpec::new("Main").launcher().initial_fragment("Shared").button_to("Other"),
            )
            .activity(ActivitySpec::new("Other").initial_fragment("Shared"))
            .fragment(FragmentSpec::new("Shared").api("location", "getProviders"))
            .build();
        let mut d = Device::new(gen.app);
        d.launch().unwrap();
        d.click("btn_other").unwrap();
        let hosts: std::collections::BTreeSet<String> = d
            .monitor()
            .sequence()
            .iter()
            .filter_map(|i| match &i.caller {
                fd_droidsim::Caller::Fragment { host, .. } => Some(host.as_str().to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(hosts.len(), 2, "the shared fragment ran under both hosts: {hosts:?}");
    }
}

#[cfg(test)]
mod try_build_tests {
    use super::*;

    #[test]
    fn try_build_reports_dangling_links() {
        let result = AppBuilder::new("bad.app")
            .activity(ActivitySpec::new("Main").launcher().initial_fragment("Ghost"))
            .try_build();
        let problems = result.expect_err("missing fragment class must be reported");
        assert!(problems.iter().any(|p| p.contains("Ghost")), "{problems:?}");
    }

    #[test]
    fn try_build_matches_build_on_wellformed_specs() {
        let ok = AppBuilder::new("ok.app")
            .activity(ActivitySpec::new("Main").launcher())
            .try_build()
            .expect("well-formed");
        assert_eq!(ok.app.package(), "ok.app");
    }
}
