//! The 217-app dataset behind the paper's §VII-A study.
//!
//! The paper downloads 217 popular apps (more than 500,000 downloads) from
//! 27 Google-Play categories and finds that **91%** use Fragments; some
//! apps are packer-protected and are excluded from dependency extraction.
//! This module regenerates a corpus with those properties, deterministic
//! in the seed.

use crate::builder::GeneratedApp;
use crate::random::{generate, GenConfig};

/// Category-specific generation profiles: news apps are drawer-heavy,
/// tools are activity-heavy, shopping apps gate flows behind inputs, and
/// so on. The profiles shape the corpus-wide AFTM statistics without
/// changing the headline fragment-usage rate.
pub fn category_profile(category: &str) -> GenConfig {
    let base = GenConfig::default();
    match category {
        "News Magazine" | "Books and Reference" | "Comics" => GenConfig {
            p_drawer: 0.8, // section navigation lives in drawers
            ..base
        },
        "Tools" | "Productivity" | "Business Office" => GenConfig {
            p_drawer: 0.15,
            p_gate: 0.10, // utilitarian: many screens, few gates
            ..base
        },
        "Shopping" | "Finance" => GenConfig {
            p_gate: 0.4, // checkout/login gates everywhere
            p_gate_known: 0.5,
            ..base
        },
        "Entertainment" | "Video Players" | "Music and Audio" => GenConfig {
            p_popup: 0.5, // media apps love action-bar menus
            ..base
        },
        "Social" | "Communication" => GenConfig {
            p_direct: 0.15, // hand-rolled view composition (dubsmash-like)
            ..base
        },
        _ => base,
    }
}

/// The 27 categories with the paper's reported app counts for the top
/// five; the remainder is spread evenly to total 217.
pub const CATEGORIES: &[(&str, usize)] = &[
    ("Tools", 21),
    ("Entertainment", 21),
    ("News Magazine", 16),
    ("Business Office", 15),
    ("Books and Reference", 14),
    ("Communication", 6),
    ("Education", 6),
    ("Finance", 6),
    ("Health and Fitness", 6),
    ("Lifestyle", 6),
    ("Maps and Navigation", 6),
    ("Music and Audio", 6),
    ("Photography", 6),
    ("Productivity", 6),
    ("Shopping", 6),
    ("Social", 6),
    ("Sports", 6),
    ("Travel and Local", 6),
    ("Video Players", 6),
    ("Weather", 6),
    ("Personalization", 6),
    ("Food and Drink", 6),
    ("House and Home", 6),
    ("Parenting", 6),
    ("Comics", 6),
    ("Medical", 5),
    ("Events", 5),
];

/// Number of apps in the corpus.
pub const CORPUS_SIZE: usize = 217;

/// Number of corpus apps that use Fragments (197 / 217 ≈ 90.8%, matching
/// the paper's "nearly 91%").
pub const FRAGMENT_USERS: usize = 197;

/// Number of packer-protected apps (excluded from static analysis, like
/// the paper's encrypted/protected apps).
pub const PACKED_APPS: usize = 14;

/// Generates the full corpus. App `i` uses fragments iff
/// `i % 11 != 10` scaled to hit [`FRAGMENT_USERS`] exactly; every 16th app
/// is packer-protected. Download counts exceed 500 000 throughout.
pub fn corpus_217(seed: u64) -> Vec<GeneratedApp> {
    let mut categories = Vec::with_capacity(CORPUS_SIZE);
    for (name, count) in CATEGORIES {
        for _ in 0..*count {
            categories.push(*name);
        }
    }
    assert_eq!(categories.len(), CORPUS_SIZE, "category counts must sum to 217");

    let fragment_free: Vec<usize> = (0..CORPUS_SIZE - FRAGMENT_USERS)
        .map(|k| k * CORPUS_SIZE / (CORPUS_SIZE - FRAGMENT_USERS))
        .collect();
    // Packer-protected apps cannot be decompiled, so a study that counts
    // fragment usage through the decompiler necessarily scores them as
    // non-users. Drawing the packed subset from the fragment-free apps
    // keeps the measurable usage rate at the corpus ground truth (91%).
    let packed: Vec<usize> = fragment_free.iter().copied().take(PACKED_APPS).collect();

    (0..CORPUS_SIZE)
        .map(|i| {
            let uses_fragments = !fragment_free.contains(&i);
            let config = GenConfig {
                activities: 3 + (i % 9),
                fragments: if uses_fragments { 1 + (i % 7) } else { 0 },
                ..category_profile(categories[i])
            };
            let mut gen =
                generate(&format!("corpus.app{i:03}"), &config, seed.wrapping_add(i as u64));
            gen.app.meta.category = categories[i].to_string();
            gen.app.meta.downloads = 500_000 + (i as u64 % 10) * 1_000_000;
            gen.app.meta.packed = packed.contains(&i);
            gen
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_217_apps_in_27_categories() {
        let corpus = corpus_217(1);
        assert_eq!(corpus.len(), 217);
        let categories: std::collections::BTreeSet<_> =
            corpus.iter().map(|g| g.app.meta.category.clone()).collect();
        assert_eq!(categories.len(), 27);
    }

    #[test]
    fn fragment_usage_is_91_percent() {
        let corpus = corpus_217(1);
        let users = corpus
            .iter()
            .filter(|g| {
                g.app.classes.iter().any(|c| g.app.classes.is_fragment_class(c.name.as_str()))
            })
            .count();
        assert_eq!(users, FRAGMENT_USERS);
        let pct = users as f64 / corpus.len() as f64 * 100.0;
        assert!((90.0..92.0).contains(&pct), "fragment usage {pct:.1}% not ≈91%");
    }

    #[test]
    fn some_apps_are_packed_and_all_exceed_500k_downloads() {
        let corpus = corpus_217(1);
        let packed = corpus.iter().filter(|g| g.app.meta.packed).count();
        assert_eq!(packed, PACKED_APPS);
        assert!(corpus.iter().all(|g| g.app.meta.downloads >= 500_000));
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus_217(9);
        let b = corpus_217(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
        }
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn profiles_differ_where_documented() {
        let news = category_profile("News Magazine");
        let tools = category_profile("Tools");
        let shop = category_profile("Shopping");
        assert!(news.p_drawer > tools.p_drawer);
        assert!(shop.p_gate > tools.p_gate);
        // Unknown categories get the default.
        let other = category_profile("Events");
        assert_eq!(other.p_drawer, GenConfig::default().p_drawer);
    }

    #[test]
    fn profiled_corpus_keeps_usage_and_determinism() {
        let a = corpus_217(5);
        let b = corpus_217(5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
        }
        let users = a
            .iter()
            .filter(|g| {
                g.app.classes.iter().any(|c| g.app.classes.is_fragment_class(c.name.as_str()))
            })
            .count();
        assert_eq!(users, FRAGMENT_USERS);
    }
}
