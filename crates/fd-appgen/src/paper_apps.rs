//! The 15 Table-I evaluation apps.
//!
//! Real Google-Play APKs are unavailable to this reproduction, so each app
//! is synthesized with the structural facts the paper itself reports:
//!
//! * the **Sum** columns of Table I (effective activities and fragments)
//!   are matched exactly;
//! * the **Visited** columns are engineered through the failure modes the
//!   paper documents per app — input-gated activities whose secrets are
//!   not in the input-dependency file plus required intent extras (so the
//!   forced start FCs), fragments hosted by unvisited activities,
//!   fragments loaded without a `FragmentManager` (*dubsmash*), fragment
//!   constructors with parameters (*zara*), material-design drawers
//!   (*cnn*, *shopalerts*), action-bar popups (*adobe*, *where2get*,
//!   *zara*, *shopalerts*);
//! * sensitive-API calls are placed so that the Table-II aggregates hold:
//!   46 distinct APIs, ≈269 invocation relations, ≈49% fragment-
//!   associated, ≈9.6% observable only at the fragment level. (The
//!   printed table's per-cell marks are too noisy to transcribe; the
//!   placement counts per app approximate each column's density.)
//!
//! Where Table I's three column groups are mutually inconsistent (e.g.
//! *com.adobe.reader* reports 5 visited fragments but only 2 fragments in
//! visited activities), the reproduction is self-consistent and
//! `EXPERIMENTS.md` records the deviation.

use crate::builder::{ActivitySpec, AppBuilder, FragmentSpec, GatedLink, GeneratedApp};
use fd_droidsim::SENSITIVE_APIS;

/// UI flavor of an app — which of the paper's documented failure modes it
/// exhibits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flavor {
    /// Material-design navigation drawer on the main activity.
    pub drawer: bool,
    /// Action-bar popup menus that interrupt test generation.
    pub popup: bool,
    /// Strict inputs (place names, credentials) that are *not* in the
    /// input-dependency file.
    pub strict_input: bool,
    /// Fragments loaded without a `FragmentManager`.
    pub direct_load: bool,
    /// Blocked fragments use parameterized constructors (instead of being
    /// hidden behind dead code with default ctors).
    pub ctor_args: bool,
}

/// The structural specification of one evaluation app.
#[derive(Clone, Debug)]
pub struct PaperAppSpec {
    /// Google-Play package name.
    pub package: &'static str,
    /// Download band lower bound.
    pub downloads: u64,
    /// Total effective activities (Table I "Sum").
    pub activities: usize,
    /// Activities engineered to be unreachable (gate + required extra).
    pub unvisited_activities: usize,
    /// Total effective fragments (Table I "Sum").
    pub fragments: usize,
    /// Fragments hosted by unvisited activities.
    pub fragments_in_unvisited: usize,
    /// Fragments in visited activities that resist both clicking and
    /// reflection.
    pub blocked_fragments: usize,
    /// Failure-mode flavor.
    pub flavor: Flavor,
    /// Sensitive-API placement: (activity-only, fragment-only, both).
    pub api_marks: (usize, usize, usize),
}

impl PaperAppSpec {
    /// Expected visited fragments under this construction.
    pub fn expected_visited_fragments(&self) -> usize {
        self.fragments - self.fragments_in_unvisited - self.blocked_fragments
    }

    /// Expected visited activities.
    pub fn expected_visited_activities(&self) -> usize {
        self.activities - self.unvisited_activities
    }
}

const D: Flavor = Flavor {
    drawer: true,
    popup: false,
    strict_input: false,
    direct_load: false,
    ctor_args: false,
};
const P: Flavor = Flavor {
    drawer: false,
    popup: true,
    strict_input: false,
    direct_load: false,
    ctor_args: false,
};
const DP: Flavor =
    Flavor { drawer: true, popup: true, strict_input: false, direct_load: false, ctor_args: false };
const S: Flavor = Flavor {
    drawer: false,
    popup: false,
    strict_input: true,
    direct_load: false,
    ctor_args: false,
};
const DIRECT: Flavor = Flavor {
    drawer: false,
    popup: false,
    strict_input: false,
    direct_load: true,
    ctor_args: false,
};
const CP: Flavor =
    Flavor { drawer: false, popup: true, strict_input: false, direct_load: false, ctor_args: true };
const PLAIN: Flavor = Flavor {
    drawer: false,
    popup: false,
    strict_input: false,
    direct_load: false,
    ctor_args: false,
};

/// The 15 apps, in Table I order.
pub const PAPER_APPS: &[PaperAppSpec] = &[
    PaperAppSpec {
        package: "au.com.digitalstampede.formula",
        downloads: 50_000,
        activities: 2,
        unvisited_activities: 1,
        fragments: 2,
        fragments_in_unvisited: 0,
        blocked_fragments: 0,
        flavor: PLAIN,
        api_marks: (2, 2, 16),
    },
    PaperAppSpec {
        package: "com.adobe.reader",
        downloads: 100_000_000,
        activities: 13,
        unvisited_activities: 6,
        fragments: 5,
        fragments_in_unvisited: 0,
        blocked_fragments: 0,
        flavor: P,
        api_marks: (3, 2, 1),
    },
    PaperAppSpec {
        package: "com.advancedprocessmanager",
        downloads: 10_000_000,
        activities: 7,
        unvisited_activities: 2,
        fragments: 10,
        fragments_in_unvisited: 0,
        blocked_fragments: 0,
        flavor: PLAIN,
        api_marks: (4, 4, 3),
    },
    PaperAppSpec {
        package: "com.aircrunch.shopalerts",
        downloads: 1_000_000,
        activities: 10,
        unvisited_activities: 3,
        fragments: 13,
        fragments_in_unvisited: 4,
        blocked_fragments: 1,
        flavor: DP,
        api_marks: (1, 3, 12),
    },
    PaperAppSpec {
        package: "com.c51",
        downloads: 5_000_000,
        activities: 35,
        unvisited_activities: 7,
        fragments: 3,
        fragments_in_unvisited: 0,
        blocked_fragments: 1,
        flavor: PLAIN,
        api_marks: (2, 1, 6),
    },
    PaperAppSpec {
        package: "com.cnn.mobile.android.phone",
        downloads: 10_000_000,
        activities: 23,
        unvisited_activities: 7,
        fragments: 10,
        fragments_in_unvisited: 6,
        blocked_fragments: 1,
        flavor: D,
        api_marks: (3, 2, 1),
    },
    PaperAppSpec {
        package: "com.happy2.bbmanga",
        downloads: 1_000_000,
        activities: 5,
        unvisited_activities: 3,
        fragments: 5,
        fragments_in_unvisited: 2,
        blocked_fragments: 0,
        flavor: PLAIN,
        api_marks: (1, 1, 4),
    },
    PaperAppSpec {
        package: "com.inditex.zara",
        downloads: 10_000_000,
        activities: 9,
        unvisited_activities: 2,
        fragments: 15,
        fragments_in_unvisited: 5,
        blocked_fragments: 3,
        flavor: CP,
        api_marks: (1, 4, 10),
    },
    PaperAppSpec {
        package: "com.mobilemotion.dubsmash",
        downloads: 100_000_000,
        activities: 11,
        unvisited_activities: 1,
        fragments: 3,
        fragments_in_unvisited: 0,
        blocked_fragments: 3,
        flavor: DIRECT,
        api_marks: (1, 0, 0),
    },
    PaperAppSpec {
        package: "com.ovuline.pregnancy",
        downloads: 1_000_000,
        activities: 27,
        unvisited_activities: 10,
        fragments: 37,
        fragments_in_unvisited: 11,
        blocked_fragments: 18,
        flavor: PLAIN,
        api_marks: (2, 2, 30),
    },
    PaperAppSpec {
        package: "com.weather.Weather",
        downloads: 50_000_000,
        activities: 17,
        unvisited_activities: 4,
        fragments: 1,
        fragments_in_unvisited: 0,
        blocked_fragments: 0,
        flavor: S,
        api_marks: (4, 0, 2),
    },
    PaperAppSpec {
        package: "com.where2get.android.app",
        downloads: 500_000,
        activities: 16,
        unvisited_activities: 7,
        fragments: 8,
        fragments_in_unvisited: 4,
        blocked_fragments: 0,
        flavor: P,
        api_marks: (1, 0, 0),
    },
    PaperAppSpec {
        package: "imoblife.toolbox.full",
        downloads: 10_000_000,
        activities: 14,
        unvisited_activities: 0,
        fragments: 9,
        fragments_in_unvisited: 0,
        blocked_fragments: 1,
        flavor: PLAIN,
        api_marks: (3, 3, 13),
    },
    PaperAppSpec {
        package: "net.aviascanner.aviascanner",
        downloads: 1_000_000,
        activities: 7,
        unvisited_activities: 0,
        fragments: 4,
        fragments_in_unvisited: 0,
        blocked_fragments: 0,
        flavor: PLAIN,
        api_marks: (2, 1, 8),
    },
    PaperAppSpec {
        package: "org.rbc.odb",
        downloads: 1_000_000,
        activities: 5,
        unvisited_activities: 1,
        fragments: 8,
        fragments_in_unvisited: 3,
        blocked_fragments: 0,
        flavor: PLAIN,
        api_marks: (1, 1, 0),
    },
];

/// Synthesizes one evaluation app from its spec. `api_cursor` threads the
/// global sensitive-API assignment so that all 46 catalog entries appear
/// across the suite.
pub fn synthesize(spec: &PaperAppSpec, api_cursor: &mut usize) -> GeneratedApp {
    let visited = spec.expected_visited_activities();
    assert!(visited >= 1, "{}: must have a reachable launcher", spec.package);

    let act_name = |i: usize| if i == 0 { "Main".to_string() } else { format!("Screen{i}") };
    let gated_name = |i: usize| format!("Gated{i}");
    let frag_name = |i: usize| format!("Frag{i}");

    // --- activities ---
    let mut activities: Vec<ActivitySpec> = (0..visited)
        .map(|i| {
            let mut a = ActivitySpec::new(act_name(i));
            if i == 0 {
                a = a.launcher();
                if spec.flavor.popup {
                    a = a.with_popup_menu();
                }
            }
            a.extra_widgets = 2;
            a
        })
        .collect();
    // Reachability: a tree of breadth 3 over the visited activities.
    for i in 1..visited {
        let parent = (i - 1) / 3;
        activities[parent].buttons_to.push(act_name(i));
    }
    // Unvisited activities: gated behind unknown input + required extra.
    let mut gated: Vec<ActivitySpec> = (0..spec.unvisited_activities)
        .map(|i| {
            let mut a = ActivitySpec::new(gated_name(i)).requires_extra("session");
            a.extra_widgets = 1;
            a
        })
        .collect();
    for i in 0..spec.unvisited_activities {
        let holder = i % visited;
        let secret = if spec.flavor.strict_input {
            format!("Lawrence, Kansas {i}") // a place name nobody provided
        } else {
            format!("credential-{i}")
        };
        activities[holder].gates.push(GatedLink {
            target: gated_name(i),
            secret,
            input_known: false,
        });
    }

    // --- fragments ---
    let visible = spec.expected_visited_fragments();
    let mut fragments: Vec<FragmentSpec> = Vec::with_capacity(spec.fragments);
    let mut fi = 0;

    // Visible fragments spread over visited activities: the first batch on
    // Main (drawer or tabs per flavor), the rest as tabs on later screens.
    for k in 0..visible {
        let name = frag_name(fi);
        fi += 1;
        let host = k % visited;
        if host == 0 && spec.flavor.drawer {
            activities[0].drawer_fragments.push(name.clone());
        } else if activities[host].initial_fragment.is_none() {
            activities[host].initial_fragment = Some(name.clone());
        } else {
            activities[host].tab_fragments.push(name.clone());
        }
        fragments.push(FragmentSpec::new(name));
    }
    // Blocked fragments in visited activities.
    for k in 0..spec.blocked_fragments {
        let name = frag_name(fi);
        fi += 1;
        let host = k % visited;
        let mut frag = FragmentSpec::new(name.clone());
        if spec.flavor.direct_load {
            activities[host].direct_fragments.push(name);
        } else {
            // Hidden switch reachable only by reflection, which the
            // parameterized constructor then defeats.
            activities[host].hidden_fragments.push(name);
            frag = frag.ctor_requires_args();
        }
        fragments.push(frag);
    }
    // Fragments hosted by unvisited activities.
    for k in 0..spec.fragments_in_unvisited {
        let name = frag_name(fi);
        fi += 1;
        let host = k % spec.unvisited_activities.max(1);
        if gated[host].initial_fragment.is_none() {
            gated[host].initial_fragment = Some(name.clone());
        } else {
            gated[host].tab_fragments.push(name.clone());
        }
        fragments.push(FragmentSpec::new(name));
    }
    assert_eq!(fi, spec.fragments);

    // --- sensitive-API placement (visited elements only) ---
    let (n_a, n_f, n_b) = spec.api_marks;
    let mut take = || {
        let (g, n) = SENSITIVE_APIS[*api_cursor % SENSITIVE_APIS.len()];
        *api_cursor += 1;
        (g, n)
    };
    for k in 0..n_a {
        let (g, n) = take();
        activities[k % visited].apis.push((g.to_string(), n.to_string()));
    }
    for k in 0..n_f {
        let (g, n) = take();
        assert!(visible > 0, "{}: fragment mark without visible fragment", spec.package);
        fragments[k % visible].apis.push((g.to_string(), n.to_string()));
    }
    for k in 0..n_b {
        let (g, n) = take();
        assert!(visible > 0, "{}: both-mark without visible fragment", spec.package);
        activities[k % visited].apis.push((g.to_string(), n.to_string()));
        fragments[k % visible].apis.push((g.to_string(), n.to_string()));
    }

    // --- assemble ---
    let mut builder = AppBuilder::new(spec.package).meta("Evaluation", spec.downloads);
    for a in activities.into_iter().chain(gated) {
        builder = builder.activity(a);
    }
    for f in fragments {
        builder = builder.fragment(f);
    }
    builder.build()
}

/// Synthesizes all 15 apps with a shared API cursor (so all 46 catalog
/// APIs appear across the suite).
pub fn all_paper_apps() -> Vec<(&'static PaperAppSpec, GeneratedApp)> {
    let mut cursor = 0;
    PAPER_APPS.iter().map(|spec| (spec, synthesize(spec, &mut cursor))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_droidsim::Device;

    #[test]
    fn sums_match_table_one() {
        // (package suffix, activities, fragments) spot checks from Table I.
        let expected = [
            ("formula", 2, 2),
            ("com.adobe.reader", 13, 5),
            ("com.c51", 35, 3),
            ("com.ovuline.pregnancy", 27, 37),
            ("org.rbc.odb", 5, 8),
        ];
        for (suffix, acts, frags) in expected {
            let spec = PAPER_APPS.iter().find(|s| s.package.ends_with(suffix)).unwrap();
            assert_eq!(spec.activities, acts, "{suffix} activities");
            assert_eq!(spec.fragments, frags, "{suffix} fragments");
        }
    }

    #[test]
    fn all_apps_build_and_launch() {
        for (spec, gen) in all_paper_apps() {
            assert_eq!(gen.app.manifest.activities.len(), spec.activities, "{}", spec.package);
            let n_frags = gen
                .app
                .classes
                .iter()
                .filter(|c| gen.app.classes.is_fragment_class(c.name.as_str()))
                .count();
            assert_eq!(n_frags, spec.fragments, "{}", spec.package);
            let mut d = Device::new(gen.app);
            let out = d.launch().unwrap_or_else(|e| panic!("{}: {e}", spec.package));
            assert!(out.changed_ui(), "{}: launch failed: {out:?}", spec.package);
        }
    }

    #[test]
    fn api_mark_totals_match_table_two_aggregates() {
        let (mut a, mut f, mut b) = (0usize, 0usize, 0usize);
        for spec in PAPER_APPS {
            a += spec.api_marks.0;
            f += spec.api_marks.1;
            b += spec.api_marks.2;
        }
        let total_invocations = a + f + 2 * b;
        let fragment_associated = f + b;
        let fragment_only = f;
        assert_eq!(total_invocations, 269, "paper: 269 invocations");
        let frac = fragment_associated as f64 / total_invocations as f64;
        assert!((0.47..0.51).contains(&frac), "fragment share {frac:.3} ≉ 49%");
        let miss = fragment_only as f64 / total_invocations as f64;
        assert!(miss >= 0.096, "fragment-only share {miss:.3} < 9.6%");
    }

    #[test]
    fn all_46_apis_appear_across_the_suite() {
        let mut seen = std::collections::BTreeSet::new();
        for (_, gen) in all_paper_apps() {
            for class in gen.app.classes.iter() {
                fd_smali::visit::walk_class(class, &mut |s| {
                    if let fd_smali::Stmt::InvokeApi { group, name } = s {
                        seen.insert((group.clone(), name.clone()));
                    }
                });
            }
        }
        assert_eq!(seen.len(), 46, "all catalog APIs must be placed");
    }

    #[test]
    fn dubsmash_fragments_all_load_without_manager() {
        let spec = PAPER_APPS.iter().find(|s| s.package.contains("dubsmash")).unwrap();
        let mut cursor = 0;
        let gen = synthesize(spec, &mut cursor);
        let direct: usize = gen
            .app
            .classes
            .iter()
            .map(|c| {
                let mut n = 0;
                fd_smali::visit::walk_class(c, &mut |s| {
                    if matches!(s, fd_smali::Stmt::AttachDirect { .. }) {
                        n += 1;
                    }
                });
                n
            })
            .sum();
        assert_eq!(direct, 3);
    }
}
