//! Streaming corpus generation: size-parameterized synthetic corpora
//! written straight to the sharded FDCS on-disk format.
//!
//! [`crate::corpus::corpus_217`] materializes the paper's 217-app study
//! set in memory; this module generalizes its scheme — the 27 weighted
//! Play-store categories, the per-category [`GenConfig`] profiles, the
//! ~91% fragment-usage rate, and the packer-protected subset — to
//! corpora of any size (100k+ apps), generated one app at a time and
//! appended to [`fd_apk::corpus::ShardWriter`]s so resident memory stays
//! O(1 app) regardless of corpus size.
//!
//! Layout is a pure function of `(profile, seed, index)`: the same
//! [`StreamConfig`] always produces byte-identical shard files and the
//! same manifest digest.

use crate::builder::GeneratedApp;
use crate::corpus::{category_profile, CATEGORIES};
use crate::random::{generate, GenConfig};
use bytes::BytesMut;
use fd_apk::corpus::{
    fold_entry_digest, format_digest, write_manifest, CorpusError, CorpusManifest, ShardManifest,
    ShardWriter, DIGEST_SEED,
};
use std::path::Path;

/// How big each generated app is — the knob separating CI-speed corpora
/// from paper-faithful ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Small apps (1–3 activities, 0–2 fragments) for 1k–100k-app CI
    /// and bench corpora.
    Tiny,
    /// The `corpus_217` shape: 3–11 activities, 0–7 fragments, full
    /// per-category behavior profiles.
    Paper,
}

impl Profile {
    /// Parses a profile name as the CLI spells it.
    pub fn parse(name: &str) -> Result<Profile, String> {
        match name {
            "tiny" => Ok(Profile::Tiny),
            "paper" => Ok(Profile::Paper),
            other => Err(format!("unknown corpus profile '{other}' (tiny, paper)")),
        }
    }

    /// The profile's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Tiny => "tiny",
            Profile::Paper => "paper",
        }
    }
}

/// Parameters of one streamed corpus.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Total apps to generate.
    pub apps: usize,
    /// Corpus seed; app `i` is generated with `seed + i`.
    pub seed: u64,
    /// Per-app size profile.
    pub profile: Profile,
    /// Apps per shard file (the last shard may hold fewer).
    pub shard_size: usize,
}

impl StreamConfig {
    /// A corpus of `apps` tiny apps, seeded, 1024 apps per shard.
    pub fn tiny(apps: usize, seed: u64) -> StreamConfig {
        StreamConfig { apps, seed, profile: Profile::Tiny, shard_size: 1024 }
    }
}

/// The flattened weighted category cycle (217 entries across the 27
/// categories); app `i` draws `cycle[i % 217]`, so any corpus size keeps
/// the paper's category mix.
fn category_of(index: usize) -> &'static str {
    let mut slot = index % crate::corpus::CORPUS_SIZE;
    for (name, count) in CATEGORIES {
        if slot < *count {
            return name;
        }
        slot -= count;
    }
    unreachable!("category counts sum to CORPUS_SIZE");
}

/// Whether app `i` is fragment-free (every 11th app ≈ the paper's 9%
/// non-users).
fn fragment_free(index: usize) -> bool {
    index % 11 == 10
}

/// Whether app `i` is packer-protected — a subset of the fragment-free
/// apps (see `corpus_217`: packed apps cannot be decompiled, so keeping
/// them fragment-free preserves the measurable 91% usage rate).
fn packed(index: usize) -> bool {
    index % 22 == 10
}

/// The deterministic [`GenConfig`] for app `i` under a profile.
pub fn app_config(profile: Profile, index: usize) -> GenConfig {
    let base = category_profile(category_of(index));
    let fragments = if fragment_free(index) { 0 } else { 1 + index % 7 };
    match profile {
        Profile::Paper => GenConfig { activities: 3 + index % 9, fragments, ..base },
        Profile::Tiny => GenConfig {
            activities: 1 + index % 3,
            fragments: fragments.min(2),
            api_density: 0.4,
            ..base
        },
    }
}

/// Generates corpus app `i` — package `corpus.app{i:06}`, category and
/// store metadata set, packer flag applied. Pure in
/// `(profile, seed, index)`.
pub fn generate_stream_app(profile: Profile, seed: u64, index: usize) -> GeneratedApp {
    let config = app_config(profile, index);
    let mut gen =
        generate(&format!("corpus.app{index:06}"), &config, seed.wrapping_add(index as u64));
    gen.app.meta.category = category_of(index).to_string();
    gen.app.meta.downloads = 500_000 + (index as u64 % 10) * 1_000_000;
    gen.app.meta.packed = packed(index);
    gen
}

/// Streams a whole corpus to `dir` as FDCS shards plus a `corpus.json`
/// manifest, returning the manifest. One app is resident at a time; the
/// pack buffer is reused across apps. Same config → byte-identical
/// files and digest.
pub fn write_corpus(dir: &Path, config: &StreamConfig) -> Result<CorpusManifest, CorpusError> {
    assert!(config.shard_size > 0, "shard_size must be at least 1");
    std::fs::create_dir_all(dir).map_err(|e| CorpusError::Io {
        path: dir.to_path_buf(),
        op: "create dir",
        error: e,
    })?;
    let mut shards = Vec::new();
    let mut digest = DIGEST_SEED;
    let mut buf = BytesMut::new();
    let mut index = 0usize;
    while index < config.apps || (config.apps == 0 && shards.is_empty()) {
        let in_shard = config.shard_size.min(config.apps - index.min(config.apps));
        let file = format!("shard-{:04}.fdcs", shards.len());
        let mut writer = ShardWriter::create(&dir.join(&file))?;
        for _ in 0..in_shard {
            let gen = generate_stream_app(config.profile, config.seed, index);
            buf.clear();
            fd_apk::container::pack_into(&gen.app, &mut buf);
            writer.append(buf.as_slice(), &gen.known_inputs)?;
            digest = fold_entry_digest(digest, buf.as_slice(), &gen.known_inputs);
            index += 1;
        }
        writer.finish()?;
        shards.push(ShardManifest { file, apps: in_shard });
        if config.apps == 0 {
            break;
        }
    }
    let manifest = CorpusManifest {
        version: 1,
        seed: config.seed,
        apps: config.apps,
        profile: config.profile.name().to_string(),
        shard_size: config.shard_size,
        corpus_digest: format_digest(digest),
        shards,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_apk::corpus::CorpusReader;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fd-stream-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn profiles_parse_and_name() {
        assert_eq!(Profile::parse("tiny").unwrap(), Profile::Tiny);
        assert_eq!(Profile::parse("paper").unwrap(), Profile::Paper);
        assert!(Profile::parse("huge").unwrap_err().contains("tiny"));
        assert_eq!(Profile::Paper.name(), "paper");
    }

    #[test]
    fn category_cycle_matches_the_217_weights() {
        let mut seen = std::collections::BTreeMap::new();
        for i in 0..crate::corpus::CORPUS_SIZE {
            *seen.entry(category_of(i)).or_insert(0usize) += 1;
        }
        for (name, count) in CATEGORIES {
            assert_eq!(seen.get(name), Some(count), "category {name}");
        }
        // The cycle wraps.
        assert_eq!(category_of(0), category_of(crate::corpus::CORPUS_SIZE));
    }

    #[test]
    fn packed_apps_are_a_fragment_free_subset() {
        for i in 0..500 {
            if packed(i) {
                assert!(fragment_free(i), "packed app {i} must be fragment-free");
            }
        }
        let packed_count = (0..1000).filter(|&i| packed(i)).count();
        let free_count = (0..1000).filter(|&i| fragment_free(i)).count();
        assert!(packed_count > 0 && packed_count < free_count);
    }

    #[test]
    fn tiny_apps_are_smaller_than_paper_apps() {
        for i in [0, 5, 13] {
            let tiny = app_config(Profile::Tiny, i);
            let paper = app_config(Profile::Paper, i);
            assert!(tiny.activities <= paper.activities);
            assert!(tiny.fragments <= paper.fragments);
        }
    }

    #[test]
    fn same_seed_is_byte_identical_on_disk() {
        let config = StreamConfig { apps: 9, seed: 42, profile: Profile::Tiny, shard_size: 4 };
        let a = tmp_dir("ident-a");
        let b = tmp_dir("ident-b");
        let ma = write_corpus(&a, &config).expect("write a");
        let mb = write_corpus(&b, &config).expect("write b");
        assert_eq!(ma, mb);
        assert_eq!(ma.shards.len(), 3, "9 apps / shard_size 4 → shards of 4, 4, 1");
        for shard in &ma.shards {
            let fa = std::fs::read(a.join(&shard.file)).expect("read a");
            let fb = std::fs::read(b.join(&shard.file)).expect("read b");
            assert_eq!(fa, fb, "shard {} differs between same-seed runs", shard.file);
        }
        let other = write_corpus(&tmp_dir("ident-c"), &StreamConfig { seed: 43, ..config })
            .expect("write c");
        assert_ne!(ma.corpus_digest, other.corpus_digest, "different seeds must diverge");
    }

    #[test]
    fn streamed_corpus_reads_back_and_verifies() {
        let dir = tmp_dir("readback");
        let config = StreamConfig { apps: 7, seed: 3, profile: Profile::Tiny, shard_size: 3 };
        let manifest = write_corpus(&dir, &config).expect("write");
        let reader = CorpusReader::open(&dir).expect("open");
        assert_eq!(reader.len(), 7);
        assert_eq!(reader.manifest(), &manifest);
        let digest = reader.verify_digest().expect("manifest digest matches streamed");
        assert_eq!(format_digest(digest), manifest.corpus_digest);
        // Entries decode through the normal container path (packed apps
        // are typed rejections, exactly like the in-memory corpus).
        let mut decoded = 0;
        let mut rejected = 0;
        for i in 0..reader.len() {
            let (container, inputs) = reader.fetch(i).expect("fetch");
            let container = bytes::Bytes::from(container);
            match fd_apk::decompile(&container) {
                Ok(app) => {
                    assert_eq!(app.manifest.package, format!("corpus.app{i:06}"));
                    decoded += 1;
                    let gen = generate_stream_app(Profile::Tiny, 3, i);
                    assert_eq!(inputs, gen.known_inputs);
                }
                Err(fd_apk::ApkError::Packed) => rejected += 1,
                Err(other) => panic!("entry {i}: unexpected decode failure {other}"),
            }
        }
        assert_eq!(decoded + rejected, 7);
    }

    #[test]
    fn empty_corpus_is_valid() {
        let dir = tmp_dir("empty");
        let config = StreamConfig { apps: 0, seed: 1, profile: Profile::Tiny, shard_size: 8 };
        let manifest = write_corpus(&dir, &config).expect("write empty");
        assert_eq!(manifest.apps, 0);
        let reader = CorpusReader::open(&dir).expect("open empty");
        assert!(reader.is_empty());
        assert_eq!(reader.verify_digest().expect("digest"), DIGEST_SEED);
    }
}
