//! Tests for the ADB facade — the three reach methods of §VI-A.

use fd_appgen::{templates, ActivitySpec, AppBuilder};
use fd_droidsim::{Adb, Device, Op, TestScript};

#[test]
fn the_three_reach_methods() {
    let gen = templates::quickstart();
    let mut app = gen.app.clone();
    app.manifest.add_main_action_everywhere();
    let mut device = Device::new(app);
    let mut adb = Adb::new(&mut device);

    // Method 1: launcher intent.
    let out = adb.am_start_launcher().unwrap();
    assert!(out.changed_ui());
    assert_eq!(adb.device().signature().unwrap().activity.as_str(), "com.example.quickstart.Main");

    // Method 2: instrumented test script.
    let report = adb.am_instrument(&TestScript::new(
        "to settings",
        vec![Op::Launch, Op::Click("btn_settings".into())],
    ));
    assert!(report.is_clean());
    assert_eq!(
        report.final_signature.unwrap().activity.as_str(),
        "com.example.quickstart.Settings"
    );

    // Method 3: forced start of an arbitrary component.
    let out = adb.am_start("com.example.quickstart.Settings").unwrap();
    assert!(out.changed_ui());
}

#[test]
fn am_instrument_reports_each_step() {
    let gen = AppBuilder::new("adb.t")
        .activity(ActivitySpec::new("Main").launcher().with_dialog())
        .build();
    let mut device = Device::new(gen.app);
    let mut adb = Adb::new(&mut device);
    let report = adb.am_instrument(&TestScript::new(
        "dialog dance",
        vec![Op::Launch, Op::Click("dlg_main".into()), Op::DismissOverlay, Op::Back],
    ));
    assert_eq!(report.steps.len(), 4);
    assert!(matches!(report.steps[1].result, Ok(fd_droidsim::EventOutcome::OverlayShown)));
    // The final Back exits the single-activity app.
    assert!(report.final_signature.is_none());
}
