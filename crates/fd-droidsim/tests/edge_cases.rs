//! Edge-case runtime tests: multi-pane + reflection interplay, mixed
//! navigation (drawer and tabs in one activity), deep chains, intent
//! extra flow, and stack boundary conditions.

use fd_appgen::{ActivitySpec, AppBuilder, FragmentSpec};
use fd_droidsim::{Device, DeviceError, EventOutcome};

#[test]
fn reflection_prefers_the_container_that_mentions_the_fragment() {
    // Two panes; the hidden fragment's dead-code switch targets the main
    // container. Reflection must land it in the container its transaction
    // names, not the first pane.
    let gen = AppBuilder::new("ec.panes")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .pane("Left")
                .pane("Right")
                .hidden_fragment("Extra"),
        )
        .fragment(FragmentSpec::new("Left"))
        .fragment(FragmentSpec::new("Right"))
        .fragment(FragmentSpec::new("Extra"))
        .build();
    let mut d = Device::new(gen.app);
    d.launch().unwrap();
    assert_eq!(d.signature().unwrap().fragments.len(), 2);
    let out = d.reflect_switch_fragment("ec.panes.Extra").unwrap();
    assert!(out.changed_ui());
    let sig = d.signature().unwrap();
    // The hidden-switch transaction targets content_main.
    assert_eq!(sig.fragments["content_main"].as_str(), "ec.panes.Extra");
    // The panes are untouched.
    assert_eq!(sig.fragments["pane0_main"].as_str(), "ec.panes.Left");
    assert_eq!(sig.fragments["pane1_main"].as_str(), "ec.panes.Right");
}

#[test]
fn drawer_and_tabs_coexist_in_one_activity() {
    let gen = AppBuilder::new("ec.mixed")
        .activity(ActivitySpec::new("Main").launcher().tabs(["TabA", "TabB"]).drawer(["Hidden"]))
        .fragment(FragmentSpec::new("TabA"))
        .fragment(FragmentSpec::new("TabB"))
        .fragment(FragmentSpec::new("Hidden"))
        .build();
    let mut d = Device::new(gen.app);
    d.launch().unwrap();
    // Tabs visible immediately; drawer item not.
    assert!(d.current().unwrap().visible_widget("tab_taba").is_some());
    assert!(d.current().unwrap().visible_widget("menu_hidden").is_none());
    d.click("tab_taba").unwrap();
    assert_eq!(d.signature().unwrap().fragments["content_main"].as_str(), "ec.mixed.TabA");
    // Open drawer and switch to the hidden one.
    d.click("hamburger_main").unwrap();
    d.click("menu_hidden").unwrap();
    assert_eq!(d.signature().unwrap().fragments["content_main"].as_str(), "ec.mixed.Hidden");
    // The drawer closed itself after the menu click.
    assert!(d.current().unwrap().open_drawers.is_empty());
}

#[test]
fn deep_activity_chain_and_back_unwinds_in_order() {
    let mut builder = AppBuilder::new("ec.deep");
    for i in 0..8 {
        let mut spec = ActivitySpec::new(format!("S{i}"));
        if i == 0 {
            spec = spec.launcher();
        }
        if i < 7 {
            spec = spec.button_to(format!("S{}", i + 1));
        }
        builder = builder.activity(spec);
    }
    let mut d = Device::new(builder.build().app);
    d.launch().unwrap();
    for i in 0..7 {
        d.click(&format!("btn_s{}", i + 1)).unwrap();
    }
    assert_eq!(d.stack_depth(), 8);
    assert_eq!(d.signature().unwrap().activity.as_str(), "ec.deep.S7");
    for i in (0..7).rev() {
        d.back().unwrap();
        assert_eq!(
            d.signature().unwrap().activity.as_str(),
            format!("ec.deep.S{i}"),
            "back must unwind one frame"
        );
    }
    // One more back exits the app.
    let out = d.back().unwrap();
    assert_eq!(out, EventOutcome::Finished);
    assert!(d.current().is_none());
    assert!(matches!(d.back(), Err(DeviceError::NotRunning)));
}

#[test]
fn extras_supplied_by_buttons_flow_into_the_started_activity() {
    let gen = AppBuilder::new("ec.extras")
        .activity(ActivitySpec::new("Main").launcher().button_to("Detail"))
        .activity(ActivitySpec::new("Detail").requires_extra("id"))
        .build();
    let mut d = Device::new(gen.app);
    d.launch().unwrap();
    d.click("btn_detail").unwrap();
    let screen = d.current().unwrap();
    assert_eq!(screen.activity.as_str(), "ec.extras.Detail");
    assert!(screen.intent.has_extra("id"), "the generated handler put-extras the key");
}

#[test]
fn overlay_swallows_reflection_targets_but_not_state() {
    let gen = AppBuilder::new("ec.overlay")
        .activity(ActivitySpec::new("Main").launcher().initial_fragment("F").with_dialog())
        .fragment(FragmentSpec::new("F"))
        .build();
    let mut d = Device::new(gen.app);
    d.launch().unwrap();
    d.click("dlg_main").unwrap();
    // The overlay masks widgets but the fragment pane is still attached.
    assert!(d.visible_widgets().iter().all(|w| w.id.is_none()));
    assert_eq!(d.current().unwrap().fragments.len(), 1);
    d.dismiss_overlay().unwrap();
    assert!(d.current().unwrap().visible_widget("dlg_main").is_some());
}

#[test]
fn relaunch_resets_ui_state_but_keeps_monitor_log() {
    let gen = AppBuilder::new("ec.relaunch")
        .activity(ActivitySpec::new("Main").launcher().drawer(["F"]).api("phone", "getDeviceId"))
        .fragment(FragmentSpec::new("F"))
        .build();
    let mut d = Device::new(gen.app);
    d.launch().unwrap();
    d.click("hamburger_main").unwrap();
    assert!(!d.current().unwrap().open_drawers.is_empty());
    let recorded = d.monitor().sequence().len();
    d.launch().unwrap();
    assert!(d.current().unwrap().open_drawers.is_empty(), "fresh task");
    assert!(
        d.monitor().sequence().len() > recorded,
        "monitor log persists across restarts (the analyst's hook does not reset)"
    );
}

#[test]
fn reflection_falls_back_to_the_layout_container() {
    // The activity obtains a FragmentManager but its code has no
    // transactions at all; reflection must fall back to the first
    // FragmentContainer of the inflated layout.
    use fd_smali::{well_known, ClassDef, MethodDef, ResRef, Stmt};
    let mut app = fd_apk::AndroidApp::new(
        fd_apk::Manifest::new("fb").with_activity(fd_apk::ActivityDecl::new("fb.Main").launcher()),
    );
    app.layouts.insert(
        "m".into(),
        fd_apk::Layout::new(
            "m",
            fd_apk::Widget::new(fd_apk::WidgetKind::Group).with_child(
                fd_apk::Widget::new(fd_apk::WidgetKind::FragmentContainer).with_id("slot"),
            ),
        ),
    );
    app.classes.insert(
        ClassDef::new("fb.Main", well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("m")))
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::NewInstance("fb.Frag".into())),
        ),
    );
    app.classes.insert(ClassDef::new("fb.Frag", well_known::SUPPORT_FRAGMENT));
    app.finalize_resources();

    let mut d = Device::new(app);
    d.launch().unwrap();
    let out = d.reflect_switch_fragment("fb.Frag").unwrap();
    assert!(out.changed_ui());
    assert_eq!(
        d.signature().unwrap().fragments["slot"].as_str(),
        "fb.Frag",
        "fragment landed in the layout's container"
    );
}
