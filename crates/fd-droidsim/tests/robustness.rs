//! Property tests: the device never panics and keeps its invariants under
//! arbitrary event sequences on arbitrary generated apps.

use fd_droidsim::{Device, EventOutcome};
use proptest::prelude::*;

/// An abstract random event; widget indices are resolved against whatever
/// is on screen when the event fires.
#[derive(Clone, Debug)]
enum Ev {
    Launch,
    ClickNth(usize),
    TypeNth(usize, String),
    Back,
    Swipe,
    Dismiss,
    ReflectNth(usize),
    ForceNth(usize),
}

fn event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        1 => Just(Ev::Launch),
        6 => (0usize..12).prop_map(Ev::ClickNth),
        2 => ((0usize..6), "[a-z]{0,8}").prop_map(|(i, s)| Ev::TypeNth(i, s)),
        2 => Just(Ev::Back),
        1 => Just(Ev::Swipe),
        1 => Just(Ev::Dismiss),
        1 => (0usize..6).prop_map(Ev::ReflectNth),
        1 => (0usize..8).prop_map(Ev::ForceNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No event sequence can panic the device, and after every event the
    /// basic invariants hold: a crashed device has no current screen, a
    /// running one has a signature consistent with its top screen, and the
    /// monitor's relation view stays a subset of its sequence view.
    #[test]
    fn device_survives_arbitrary_event_storms(
        seed in 0u64..32,
        events in prop::collection::vec(event(), 0..120),
    ) {
        let gen = fd_appgen::random::generate(
            "storm.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        // Include the manifest rewrite so ForceStart events are plausible.
        let mut app = gen.app;
        app.manifest.add_main_action_everywhere();
        let activities: Vec<String> =
            app.manifest.activities.iter().map(|d| d.name.as_str().to_string()).collect();
        let fragments: Vec<String> = app
            .classes
            .iter()
            .filter(|c| app.classes.is_fragment_class(c.name.as_str()))
            .map(|c| c.name.as_str().to_string())
            .collect();

        let mut device = Device::new(app);
        let _ = device.launch();

        for ev in events {
            let widgets: Vec<String> = device
                .visible_widgets()
                .into_iter()
                .filter_map(|w| w.id)
                .collect();
            let result: Result<EventOutcome, _> = match ev {
                Ev::Launch => device.launch(),
                Ev::ClickNth(i) if !widgets.is_empty() => {
                    device.click(&widgets[i % widgets.len()])
                }
                Ev::TypeNth(i, text) if !widgets.is_empty() => device
                    .enter_text(&widgets[i % widgets.len()], &text)
                    .map(|()| EventOutcome::NoChange),
                Ev::Back => device.back(),
                Ev::Swipe => device.swipe_open_drawer(),
                Ev::Dismiss => device.dismiss_overlay(),
                Ev::ReflectNth(i) if !fragments.is_empty() => {
                    device.reflect_switch_fragment(&fragments[i % fragments.len()])
                }
                Ev::ForceNth(i) if !activities.is_empty() => {
                    device.am_start(&activities[i % activities.len()])
                }
                _ => continue,
            };
            let _ = result;

            // Invariants.
            if device.is_crashed() {
                prop_assert!(device.current().is_none(), "crashed device shows a screen");
                prop_assert_eq!(device.stack_depth(), 0);
            }
            if let Some(sig) = device.signature() {
                let screen = device.current().expect("signature implies screen");
                prop_assert_eq!(&sig.activity, &screen.activity);
            }
            prop_assert!(
                device.monitor().invocations().count() <= device.monitor().sequence().len(),
                "relation view larger than sequence view"
            );
        }
    }

    /// Event handling is deterministic: the same storm twice produces the
    /// same final state and the same monitor sequence.
    #[test]
    fn device_is_deterministic(
        seed in 0u64..16,
        events in prop::collection::vec(event(), 0..60),
    ) {
        let gen = fd_appgen::random::generate(
            "det.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let run = |app: fd_apk::AndroidApp| {
            let mut device = Device::new(app);
            let _ = device.launch();
            for ev in &events {
                let widgets: Vec<String> =
                    device.visible_widgets().into_iter().filter_map(|w| w.id).collect();
                match ev {
                    Ev::Launch => { let _ = device.launch(); }
                    Ev::ClickNth(i) if !widgets.is_empty() => {
                        let _ = device.click(&widgets[i % widgets.len()]);
                    }
                    Ev::TypeNth(i, text) if !widgets.is_empty() => {
                        let _ = device.enter_text(&widgets[i % widgets.len()], text);
                    }
                    Ev::Back => { let _ = device.back(); }
                    Ev::Swipe => { let _ = device.swipe_open_drawer(); }
                    Ev::Dismiss => { let _ = device.dismiss_overlay(); }
                    _ => {}
                }
            }
            (device.signature(), device.monitor().sequence().to_vec())
        };
        let a = run(gen.app.clone());
        let b = run(gen.app);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any recorded random session replays faithfully on a fresh device —
    /// the foundation of both the R&R baseline and FragDroid's re-reach.
    #[test]
    fn recorded_sessions_replay_faithfully(
        seed in 0u64..24,
        picks in prop::collection::vec((0usize..10, "[a-z]{0,6}"), 0..40),
    ) {
        let gen = fd_appgen::random::generate(
            "rr.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let mut rec = fd_droidsim::Recorder::new(Device::new(gen.app.clone()));
        let _ = rec.step(fd_droidsim::Op::Launch);
        for (i, text) in picks {
            let widgets: Vec<_> = rec
                .device()
                .visible_widgets()
                .into_iter()
                .filter(|w| w.clickable || w.kind == fd_apk::WidgetKind::EditText)
                .filter_map(|w| w.id.map(|id| (id, w.kind)))
                .collect();
            if widgets.is_empty() {
                let _ = rec.step(fd_droidsim::Op::Back);
                continue;
            }
            let (id, kind) = widgets[i % widgets.len()].clone();
            let op = if kind == fd_apk::WidgetKind::EditText && !text.is_empty() {
                fd_droidsim::Op::EnterText { id, text }
            } else {
                fd_droidsim::Op::Click(id)
            };
            let _ = rec.step(op);
            if rec.device().is_crashed() {
                break;
            }
        }
        let trace = rec.finish();
        let mut fresh = Device::new(gen.app);
        prop_assert_eq!(
            fd_droidsim::replay(&mut fresh, &trace),
            fd_droidsim::ReplayOutcome::Faithful
        );
    }
}
