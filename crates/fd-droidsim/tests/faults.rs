//! Fault-injection integration tests: zero-rate identity, deterministic
//! replay of the fault log, and crash/reset semantics.

use fd_appgen::{ActivitySpec, AppBuilder, FragmentSpec};
use fd_droidsim::{
    Device, DeviceConfig, DeviceError, EventOutcome, FaultConfig, FaultKind, FaultSite,
};
use proptest::prelude::*;

/// A gated activity crashes organically when force-started with an empty
/// intent (its required extra is missing).
fn crashing_app() -> fd_apk::AndroidApp {
    let gen = AppBuilder::new("ft.crash")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("Home")
                .api("phone", "getDeviceId"),
        )
        .activity(ActivitySpec::new("Gated").requires_extra("session"))
        .fragment(FragmentSpec::new("Home"))
        .build();
    let mut app = gen.app;
    app.manifest.add_main_action_everywhere();
    app
}

#[test]
fn click_after_crash_errors_until_reset_then_launch_works() {
    let mut d = Device::new(crashing_app());
    d.launch().unwrap();
    let invocations_before = d.monitor().sequence().len();
    assert!(invocations_before > 0, "launch fires the sensitive API");

    let out = d.am_start("ft.crash.Gated").unwrap();
    assert!(matches!(out, EventOutcome::Crashed { .. }), "missing extra must FC");
    assert!(d.is_crashed());
    let site = d.crash_site().cloned();
    assert!(site.is_some(), "crash site captured before the task cleared");
    assert_eq!(site.unwrap().activity.as_str(), "ft.crash.Gated");

    // The regression this guards: events on a crashed device must error,
    // not silently no-op.
    assert!(matches!(d.click("anything"), Err(DeviceError::NotRunning)));
    assert!(matches!(d.back(), Err(DeviceError::NotRunning)));

    // `reset` clears the Force-Close without reinstalling: the monitor
    // log survives and a plain launch brings the app back.
    d.reset();
    assert!(!d.is_crashed());
    assert!(d.crash_site().is_none());
    d.launch().unwrap();
    assert_eq!(d.signature().unwrap().activity.as_str(), "ft.crash.Main");
    assert!(
        d.monitor().sequence().len() > invocations_before,
        "monitor kept the pre-crash invocations and appended the relaunch"
    );
}

#[test]
fn process_kill_fault_reports_the_synthetic_reason_and_site() {
    // Rate 1.0 forces a fault on the very first event; seeds are scanned
    // until the launch fault comes out as a ProcessKill so the test does
    // not depend on one seed's draw order.
    for seed in 0..64u64 {
        let config =
            DeviceConfig { faults: Some(FaultConfig::new(seed, 1.0)), ..DeviceConfig::default() };
        let mut d = Device::with_config(crashing_app(), config);
        // At rate 1.0 the launch may instead fault as an ANR or transient
        // start failure (an Err) — scan on until the kill comes up.
        let Ok(out) = d.launch() else { continue };
        if let EventOutcome::Crashed { reason } = out {
            assert_eq!(reason, fd_droidsim::faults::KILL_REASON);
            assert!(d.is_crashed());
            assert!(d
                .fault_log()
                .records
                .iter()
                .any(|r| matches!(r.kind, FaultKind::ProcessKill) && r.site == FaultSite::Launch));
            return;
        }
    }
    panic!("no seed in 0..64 produced a launch-site ProcessKill at rate 1.0");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A zero-rate fault plan is bit-for-bit inert: the device behaves
    /// identically to one built without any fault config, injects
    /// nothing, and logs nothing.
    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan(
        seed in 0u64..16,
        picks in prop::collection::vec(0usize..10, 0..60),
    ) {
        let gen = fd_appgen::random::generate(
            "zr.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let run = |mut device: Device| {
            let _ = device.launch();
            for i in &picks {
                let widgets: Vec<String> =
                    device.visible_widgets().into_iter().filter_map(|w| w.id).collect();
                if widgets.is_empty() {
                    let _ = device.back();
                } else {
                    let _ = device.click(&widgets[i % widgets.len()]);
                }
            }
            (device.signature(), device.monitor().sequence().to_vec(), device.faults_injected())
        };
        let plain = run(Device::new(gen.app.clone()));
        let zero_rate = run(Device::with_config(
            gen.app,
            DeviceConfig { faults: Some(FaultConfig::new(99, 0.0)), ..DeviceConfig::default() },
        ));
        prop_assert_eq!(&plain.0, &zero_rate.0, "final state diverged");
        prop_assert_eq!(&plain.1, &zero_rate.1, "monitor sequence diverged");
        prop_assert_eq!(plain.2, 0);
        prop_assert_eq!(zero_rate.2, 0, "zero-rate plan injected a fault");
    }

    /// The same (seed, rate) pair replays the identical fault log over the
    /// identical event sequence — the property the whole layer exists for.
    #[test]
    fn same_seed_replays_the_identical_fault_log(
        app_seed in 0u64..8,
        fault_seed in 0u64..1000,
        picks in prop::collection::vec(0usize..10, 1..40),
    ) {
        let gen = fd_appgen::random::generate(
            "fr.app",
            &fd_appgen::random::GenConfig::default(),
            app_seed,
        );
        let run = |app: fd_apk::AndroidApp| {
            let config = DeviceConfig {
                faults: Some(FaultConfig::new(fault_seed, 0.3)),
                ..DeviceConfig::default()
            };
            let mut device = Device::with_config(app, config);
            let _ = device.launch();
            for i in &picks {
                if device.is_crashed() {
                    device.reset();
                    let _ = device.launch();
                    continue;
                }
                let widgets: Vec<String> =
                    device.visible_widgets().into_iter().filter_map(|w| w.id).collect();
                if widgets.is_empty() {
                    let _ = device.back();
                } else {
                    let _ = device.click(&widgets[i % widgets.len()]);
                }
            }
            (device.fault_log().clone(), device.clock())
        };
        let a = run(gen.app.clone());
        let b = run(gen.app);
        prop_assert_eq!(&a.0, &b.0, "fault logs diverged for the same seed");
        prop_assert_eq!(a.1, b.1, "simulated clocks diverged");
    }
}
