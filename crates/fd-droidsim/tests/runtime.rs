//! End-to-end runtime tests: a hand-built demo app exercising launch,
//! fragment transactions, drawers, dialogs, input gates, crashes,
//! reflection (including the paper's failure modes), forced starts and
//! sensitive-API attribution.

use fd_apk::{ActivityDecl, AndroidApp, Layout, Manifest, Widget, WidgetKind};
use fd_droidsim::{Caller, Device, DeviceConfig, DeviceError, EventOutcome, Op, TestScript};
use fd_smali::{
    well_known, ClassDef, ClassName, Cond, IntentTarget, MethodDef, MethodName, ResRef, Stmt,
};

/// Builds the demo app:
///
/// * `Main` (launcher): layout with a hamburger (opens drawer), a drawer
///   holding `menu_news`/`menu_media` items that switch `NewsFragment` /
///   `MediaFragment` through the FragmentManager, a "go settings" button,
///   an "about" button that pops a dialog, `onCreate` attaches
///   `NewsFragment` and calls a location API.
/// * `NewsFragment`: layout with a button starting `DetailActivity`
///   (via host), its `onCreateView` calls an internet API.
/// * `MediaFragment`: calls a media API in `onCreateView`.
/// * `Settings`: a login gate (correct password → `Secret`), wrong →
///   dialog.
/// * `DetailActivity`: requires extra `"item"` (crashes without).
/// * `Secret`: plain.
/// * `Crashy`: crashes in a click handler.
fn demo_app() -> AndroidApp {
    let p = "com.demo";
    let cls = |n: &str| ClassName::new(format!("{p}.{n}"));

    let manifest = Manifest::new(p)
        .with_permission("android.permission.ACCESS_FINE_LOCATION")
        .with_activity(ActivityDecl::new(cls("Main")).launcher())
        .with_activity(ActivityDecl::new(cls("Settings")))
        .with_activity(ActivityDecl::new(cls("DetailActivity")))
        .with_activity(ActivityDecl::new(cls("Secret")))
        .with_activity(ActivityDecl::new(cls("Crashy")));

    let main_layout = Layout::new(
        "main",
        Widget::new(WidgetKind::Group)
            .with_child(Widget::new(WidgetKind::ImageButton).with_id("hamburger"))
            .with_child(
                Widget::new(WidgetKind::Button).with_id("go_settings").with_text("Settings"),
            )
            .with_child(Widget::new(WidgetKind::Button).with_id("about").with_text("About"))
            .with_child(Widget::new(WidgetKind::Button).with_id("go_crashy"))
            .with_child(
                Widget::new(WidgetKind::Drawer)
                    .with_id("drawer")
                    .with_child(
                        Widget::new(WidgetKind::TextView).with_id("menu_news").clickable(true),
                    )
                    .with_child(
                        Widget::new(WidgetKind::TextView).with_id("menu_media").clickable(true),
                    ),
            )
            .with_child(Widget::new(WidgetKind::FragmentContainer).with_id("content")),
    );
    let news_layout = Layout::new(
        "frag_news",
        Widget::new(WidgetKind::Group)
            .with_child(Widget::new(WidgetKind::Button).with_id("open_detail")),
    );
    let media_layout = Layout::new(
        "frag_media",
        Widget::new(WidgetKind::Group)
            .with_child(Widget::new(WidgetKind::TextView).with_id("media_label")),
    );
    let settings_layout = Layout::new(
        "settings",
        Widget::new(WidgetKind::Group)
            .with_child(Widget::new(WidgetKind::EditText).with_id("password"))
            .with_child(Widget::new(WidgetKind::Button).with_id("login")),
    );
    let detail_layout = Layout::new("detail", Widget::new(WidgetKind::Group));
    let secret_layout = Layout::new("secret", Widget::new(WidgetKind::Group));
    let crashy_layout = Layout::new(
        "crashy",
        Widget::new(WidgetKind::Group).with_child(Widget::new(WidgetKind::Button).with_id("boom")),
    );

    let main = ClassDef::new(cls("Main"), well_known::ACTIVITY)
        .with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("main")))
                .push(Stmt::InvokeApi { group: "location".into(), name: "getAllProviders".into() })
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::BeginTransaction)
                .push(Stmt::TxnAdd {
                    container: ResRef::id("content"),
                    fragment: cls("NewsFragment"),
                })
                .push(Stmt::TxnCommit)
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("hamburger"),
                    handler: "onHamburger".into(),
                })
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("menu_news"),
                    handler: "onMenuNews".into(),
                })
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("menu_media"),
                    handler: "onMenuMedia".into(),
                })
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("go_settings"),
                    handler: "onSettings".into(),
                })
                .push(Stmt::SetOnClick { widget: ResRef::id("about"), handler: "onAbout".into() })
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("go_crashy"),
                    handler: "onCrashy".into(),
                }),
        )
        .with_method(
            MethodDef::new("onHamburger").push(Stmt::ToggleDrawer { drawer: ResRef::id("drawer") }),
        )
        .with_method(
            MethodDef::new("onMenuNews")
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::BeginTransaction)
                .push(Stmt::TxnReplace {
                    container: ResRef::id("content"),
                    fragment: cls("NewsFragment"),
                })
                .push(Stmt::TxnCommit)
                .push(Stmt::ToggleDrawer { drawer: ResRef::id("drawer") }),
        )
        .with_method(
            MethodDef::new("onMenuMedia")
                .push(Stmt::GetFragmentManager { support: true })
                .push(Stmt::BeginTransaction)
                .push(Stmt::TxnReplace {
                    container: ResRef::id("content"),
                    fragment: cls("MediaFragment"),
                })
                .push(Stmt::TxnCommit)
                .push(Stmt::ToggleDrawer { drawer: ResRef::id("drawer") }),
        )
        .with_method(
            MethodDef::new("onSettings")
                .push(Stmt::NewIntent(IntentTarget::Class(cls("Settings"))))
                .push(Stmt::StartActivity { via_host: false }),
        )
        .with_method(MethodDef::new("onAbout").push(Stmt::ShowDialog { id: "about".into() }))
        .with_method(
            MethodDef::new("onCrashy")
                .push(Stmt::NewIntent(IntentTarget::Class(cls("Crashy"))))
                .push(Stmt::StartActivity { via_host: false }),
        );

    let news = ClassDef::new(cls("NewsFragment"), well_known::SUPPORT_FRAGMENT)
        .with_method(
            MethodDef::new("onCreateView")
                .push(Stmt::InflateLayout(ResRef::layout("frag_news")))
                .push(Stmt::InvokeApi { group: "internet".into(), name: "connect".into() })
                .push(Stmt::SetOnClick {
                    widget: ResRef::id("open_detail"),
                    handler: "onOpenDetail".into(),
                }),
        )
        .with_method(
            MethodDef::new("onOpenDetail")
                .push(Stmt::NewIntent(IntentTarget::Class(cls("DetailActivity"))))
                .push(Stmt::PutExtra { key: "item".into(), value: "42".into() })
                .push(Stmt::StartActivity { via_host: true }),
        );

    let media = ClassDef::new(cls("MediaFragment"), well_known::SUPPORT_FRAGMENT).with_method(
        MethodDef::new("onCreateView")
            .push(Stmt::InflateLayout(ResRef::layout("frag_media")))
            .push(Stmt::InvokeApi { group: "media".into(), name: "Camera.startPreview".into() }),
    );

    let settings = ClassDef::new(cls("Settings"), well_known::ACTIVITY)
        .with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("settings")))
                .push(Stmt::SetOnClick { widget: ResRef::id("login"), handler: "onLogin".into() }),
        )
        .with_method(MethodDef::new("onLogin").push(Stmt::If {
            cond: Cond::InputEquals { field: ResRef::id("password"), expected: "hunter2".into() },
            then: vec![
                Stmt::NewIntent(IntentTarget::Class(cls("Secret"))),
                Stmt::StartActivity { via_host: false },
            ],
            els: vec![Stmt::ShowDialog { id: "wrong password".into() }],
        }));

    let detail = ClassDef::new(cls("DetailActivity"), well_known::ACTIVITY).with_method(
        MethodDef::new("onCreate")
            .push(Stmt::RequireExtra { key: "item".into() })
            .push(Stmt::SetContentView(ResRef::layout("detail"))),
    );

    let secret = ClassDef::new(cls("Secret"), well_known::ACTIVITY).with_method(
        MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("secret"))),
    );

    let crashy = ClassDef::new(cls("Crashy"), well_known::ACTIVITY)
        .with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("crashy")))
                .push(Stmt::SetOnClick { widget: ResRef::id("boom"), handler: "onBoom".into() }),
        )
        .with_method(
            MethodDef::new("onBoom").push(Stmt::Crash { reason: "NullPointerException".into() }),
        );

    let mut app = AndroidApp::new(manifest);
    for layout in [
        main_layout,
        news_layout,
        media_layout,
        settings_layout,
        detail_layout,
        secret_layout,
        crashy_layout,
    ] {
        app.layouts.insert(layout.name.clone(), layout);
    }
    for class in [main, news, media, settings, detail, secret, crashy] {
        app.classes.insert(class);
    }
    app.finalize_resources();
    assert!(app.validate().is_empty(), "demo app must be well-formed: {:?}", app.validate());
    app
}

fn launched() -> Device {
    let mut d = Device::new(demo_app());
    d.launch().expect("launch");
    d
}

#[test]
fn launch_attaches_initial_fragment_and_records_apis() {
    let d = launched();
    let sig = d.signature().expect("running");
    assert_eq!(sig.activity.as_str(), "com.demo.Main");
    assert_eq!(sig.fragments.get("content").unwrap().as_str(), "com.demo.NewsFragment");

    // onCreate's location call is attributed to the activity; the
    // fragment's onCreateView internet call to the fragment.
    let invs: Vec<_> = d.invocations().collect();
    assert!(invs.iter().any(|i| i.group == "location"
        && matches!(&i.caller, Caller::Activity(a) if a.as_str() == "com.demo.Main")));
    assert!(invs.iter().any(|i| i.group == "internet"
        && matches!(&i.caller, Caller::Fragment { fragment, host }
            if fragment.as_str() == "com.demo.NewsFragment" && host.as_str() == "com.demo.Main")));
}

#[test]
fn hidden_drawer_items_are_unreachable_until_opened() {
    let mut d = launched();
    assert!(matches!(d.click("menu_media"), Err(DeviceError::NoSuchWidget(_))));
    let out = d.click("hamburger").unwrap();
    assert!(out.changed_ui(), "drawer toggle changes UI state: {out:?}");
    let out = d.click("menu_media").unwrap();
    let EventOutcome::UiChanged { to, .. } = out else { panic!("expected change, got {out:?}") };
    assert_eq!(to.fragments.get("content").unwrap().as_str(), "com.demo.MediaFragment");
    // The media fragment's sensitive call was recorded with fragment attribution.
    assert!(d.invocations().any(|i| i.group == "media" && i.caller.is_fragment()));
}

#[test]
fn swipe_also_opens_the_drawer() {
    let mut d = launched();
    let out = d.swipe_open_drawer().unwrap();
    assert!(out.changed_ui());
    assert!(d.current().unwrap().visible_widget("menu_news").is_some());
}

#[test]
fn fragment_handler_starts_activity_via_host() {
    let mut d = launched();
    let out = d.click("open_detail").unwrap();
    let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
    assert_eq!(to.activity.as_str(), "com.demo.DetailActivity");
    assert_eq!(d.stack_depth(), 2);
}

#[test]
fn dialog_blocks_then_dismisses() {
    let mut d = launched();
    let out = d.click("about").unwrap();
    assert_eq!(out, EventOutcome::OverlayShown);
    // Everything else is masked.
    assert!(matches!(d.click("go_settings"), Err(DeviceError::NoSuchWidget(_))));
    let out = d.dismiss_overlay().unwrap();
    assert!(out.changed_ui());
    assert!(d.click("go_settings").unwrap().changed_ui());
}

#[test]
fn login_gate_requires_exact_input() {
    let mut d = launched();
    d.click("go_settings").unwrap();
    // Wrong password → dialog.
    d.enter_text("password", "abc").unwrap();
    assert_eq!(d.click("login").unwrap(), EventOutcome::OverlayShown);
    d.dismiss_overlay().unwrap();
    // Correct password → Secret.
    d.enter_text("password", "hunter2").unwrap();
    let EventOutcome::UiChanged { to, .. } = d.click("login").unwrap() else { panic!() };
    assert_eq!(to.activity.as_str(), "com.demo.Secret");
}

#[test]
fn entering_text_into_non_input_fails() {
    let mut d = launched();
    assert!(matches!(d.enter_text("about", "x"), Err(DeviceError::NotEditable(_))));
    assert!(matches!(d.enter_text("ghost", "x"), Err(DeviceError::NoSuchWidget(_))));
}

#[test]
fn crash_kills_process_and_restart_recovers() {
    let mut d = launched();
    d.click("go_crashy").unwrap();
    let out = d.click("boom").unwrap();
    assert!(matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("NullPointer")));
    assert!(d.is_crashed());
    assert!(d.current().is_none());
    assert!(matches!(d.click("boom"), Err(DeviceError::NotRunning)));
    d.launch().unwrap();
    assert!(!d.is_crashed());
    assert_eq!(d.signature().unwrap().activity.as_str(), "com.demo.Main");
}

#[test]
fn back_pops_overlay_then_drawer_then_activity() {
    let mut d = launched();
    d.click("go_settings").unwrap();
    assert_eq!(d.stack_depth(), 2);
    // Back pops the settings screen.
    d.back().unwrap();
    assert_eq!(d.signature().unwrap().activity.as_str(), "com.demo.Main");
    // Open drawer; back closes it before popping the activity.
    d.click("hamburger").unwrap();
    d.back().unwrap();
    assert_eq!(d.stack_depth(), 1);
    assert!(d.current().unwrap().open_drawers.is_empty());
    // Dialog; back dismisses it first.
    d.click("about").unwrap();
    d.back().unwrap();
    assert_eq!(d.stack_depth(), 1);
    assert!(d.current().unwrap().overlay.is_none());
}

#[test]
fn am_start_requires_main_action_rewrite() {
    let mut d = launched();
    // Without the rewrite only the launcher has a MAIN action.
    assert!(matches!(d.am_start("com.demo.Secret"), Err(DeviceError::NotForceStartable(_))));

    // Apply FragDroid's manifest rewrite and retry.
    let mut app = demo_app();
    app.manifest.add_main_action_everywhere();
    let mut d = Device::new(app);
    let out = d.am_start("com.demo.Secret").unwrap();
    assert!(out.changed_ui());
    assert_eq!(d.signature().unwrap().activity.as_str(), "com.demo.Secret");

    // DetailActivity needs an intent extra: the empty forced intent FCs —
    // the paper's "this operation does not take the context and Intent
    // into account".
    let out = d.am_start("com.demo.DetailActivity").unwrap();
    assert!(matches!(out, EventOutcome::Crashed { .. }));
}

#[test]
fn reflection_switches_unvisited_fragment() {
    let mut d = launched();
    let out = d.reflect_switch_fragment("com.demo.MediaFragment").unwrap();
    let EventOutcome::UiChanged { to, .. } = out else { panic!("{out:?}") };
    assert_eq!(to.fragments.get("content").unwrap().as_str(), "com.demo.MediaFragment");
}

#[test]
fn reflection_failure_modes() {
    // Unknown class / not a fragment.
    let mut d = launched();
    assert!(matches!(
        d.reflect_switch_fragment("com.demo.Nope"),
        Err(DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::UnknownClass,
            ..
        })
    ));
    assert!(matches!(
        d.reflect_switch_fragment("com.demo.Settings"),
        Err(DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::NotAFragment,
            ..
        })
    ));

    // The zara case: ctor with parameters.
    let mut app = demo_app();
    app.classes.insert(
        ClassDef::new("com.demo.ParamFragment", well_known::SUPPORT_FRAGMENT)
            .with_method(MethodDef::new(MethodName::ctor()).with_param("java.lang.String")),
    );
    let mut d = Device::new(app);
    d.launch().unwrap();
    assert!(matches!(
        d.reflect_switch_fragment("com.demo.ParamFragment"),
        Err(DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::MissingCtorParameters,
            ..
        })
    ));

    // The dubsmash case: host activity never obtains a FragmentManager.
    let mut app = demo_app();
    let direct = ClassDef::new("com.demo.DirectHost", well_known::ACTIVITY).with_method(
        MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))).push(
            Stmt::AttachDirect {
                container: ResRef::id("content"),
                fragment: "com.demo.MediaFragment".into(),
            },
        ),
    );
    app.classes.insert(direct);
    app.manifest.activities.push(ActivityDecl::new("com.demo.DirectHost").launcher());
    // Make DirectHost the launcher by removing Main's launcher filter.
    app.manifest.activities[0].intent_filters.clear();
    let mut d = Device::new(app);
    d.launch().unwrap();
    assert_eq!(d.signature().unwrap().activity.as_str(), "com.demo.DirectHost");
    // The direct-attached fragment is visible but not via a manager.
    assert!(!d.current().unwrap().fragments["content"].via_manager);
    assert!(matches!(
        d.reflect_switch_fragment("com.demo.NewsFragment"),
        Err(DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::NoFragmentManager,
            ..
        })
    ));
}

#[test]
fn denied_permission_crashes_the_gated_app() {
    let mut app = demo_app();
    // Gate Main's onCreate on a permission.
    let main = app.classes.get("com.demo.Main").unwrap().clone();
    let mut gated = main.clone();
    gated.methods[0].body.insert(
        0,
        Stmt::RequirePermission { permission: "android.permission.ACCESS_FINE_LOCATION".into() },
    );
    app.classes.insert(gated);

    // Granted (default): launches fine.
    let mut ok = Device::new(app.clone());
    assert!(ok.launch().unwrap().changed_ui());

    // Denied: FC at launch — the paper's permission-failure apps.
    let mut config = DeviceConfig::default();
    config.denied_permissions.insert("android.permission.ACCESS_FINE_LOCATION".into());
    let mut denied = Device::with_config(app, config);
    assert!(matches!(denied.launch().unwrap(), EventOutcome::Crashed { .. }));
}

#[test]
fn script_runner_reports_steps_and_stops_on_crash() {
    let mut d = Device::new(demo_app());
    let script = TestScript::new(
        "reach crashy and boom",
        vec![
            Op::Launch,
            Op::Click("go_crashy".into()),
            Op::Click("boom".into()),
            Op::Click("never_reached".into()),
        ],
    );
    let report = fd_droidsim::script::run_script(&mut d, &script);
    assert!(report.crashed);
    assert_eq!(report.steps.len(), 3, "execution stops at the crash");
    assert!(!report.is_clean());
    assert_eq!(report.final_signature, None);

    // A clean run reports every step and the final signature.
    let script =
        TestScript::new("reach settings", vec![Op::Launch, Op::Click("go_settings".into())]);
    let report = fd_droidsim::script::run_script(&mut d, &script);
    assert!(report.is_clean());
    assert_eq!(report.final_signature.unwrap().activity.as_str(), "com.demo.Settings");
}

#[test]
fn checkbox_toggles_its_state() {
    let mut app = demo_app();
    let layout = Layout::new(
        "boxed",
        Widget::new(WidgetKind::Group).with_child(Widget::new(WidgetKind::CheckBox).with_id("opt")),
    );
    app.layouts.insert("boxed".into(), layout);
    app.classes.insert(ClassDef::new("com.demo.Boxed", well_known::ACTIVITY).with_method(
        MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("boxed"))),
    ));
    app.manifest.activities.push(ActivityDecl::new("com.demo.Boxed").launcher());
    app.manifest.activities[0].intent_filters.clear();
    let mut d = Device::new(app);
    d.launch().unwrap();
    d.click("opt").unwrap();
    assert_eq!(d.current().unwrap().inputs.get("opt").map(String::as_str), Some("true"));
    d.click("opt").unwrap();
    assert_eq!(d.current().unwrap().inputs.get("opt").map(String::as_str), Some(""));
}

#[test]
fn pack_install_roundtrip_behaves_identically() {
    // Install through the container: decompile → same runtime behaviour.
    let bytes = fd_apk::pack(&demo_app());
    let mut d = Device::install(&bytes).expect("install");
    d.launch().unwrap();
    let sig = d.signature().unwrap();
    assert_eq!(sig.activity.as_str(), "com.demo.Main");
    assert_eq!(sig.fragments.len(), 1);
}
