//! Activity lifecycle tests: callbacks fire in the real Android order,
//! observed through sensitive-API calls placed in each callback.

use fd_apk::{ActivityDecl, AndroidApp, Layout, Manifest, Widget, WidgetKind};
use fd_droidsim::{Caller, Device};
use fd_smali::{well_known, ClassDef, IntentTarget, MethodDef, ResRef, Stmt};

/// Builds an app whose lifecycle callbacks each call a distinct catalog
/// API, so the monitor's ordered sequence exposes the callback order.
fn lifecycle_app() -> AndroidApp {
    let api = |name: &str| Stmt::InvokeApi { group: "internet".into(), name: name.into() };

    // Marker APIs per (activity, callback).
    let a = ClassDef::new("lc.A", well_known::ACTIVITY)
        .with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("a")))
                .push(api("connect")) // A.onCreate
                .push(Stmt::SetOnClick { widget: ResRef::id("go"), handler: "onGo".into() }),
        )
        .with_method(MethodDef::new("onStart").push(api("inet"))) // A.onStart
        .with_method(MethodDef::new("onResume").push(api("InetAddress.getByName"))) // A.onResume
        .with_method(MethodDef::new("onPause").push(api("InetAddress.getAllByName"))) // A.onPause
        .with_method(MethodDef::new("onStop").push(api("InetAddress.getByAddress"))) // A.onStop
        .with_method(
            MethodDef::new("onGo")
                .push(Stmt::NewIntent(IntentTarget::Class("lc.B".into())))
                .push(Stmt::StartActivity { via_host: false }),
        );

    let b = ClassDef::new("lc.B", well_known::ACTIVITY)
        .with_method(
            MethodDef::new("onCreate")
                .push(Stmt::SetContentView(ResRef::layout("b")))
                .push(api("Connectivity.getNetworkInfo")), // B.onCreate
        )
        .with_method(MethodDef::new("onPause").push(api("NetworkInfo.isConnected")))
        .with_method(MethodDef::new("onStop").push(api("NetworkInfo.getDetailedState")))
        .with_method(MethodDef::new("onDestroy").push(api("IpPrefix.getAddress")));

    let mut app = AndroidApp::new(
        Manifest::new("lc")
            .with_activity(ActivityDecl::new("lc.A").launcher())
            .with_activity(ActivityDecl::new("lc.B")),
    );
    app.layouts.insert(
        "a".into(),
        Layout::new(
            "a",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go")),
        ),
    );
    app.layouts.insert("b".into(), Layout::new("b", Widget::new(WidgetKind::Group)));
    app.classes.insert(a);
    app.classes.insert(b);
    app.finalize_resources();
    app
}

fn names(device: &Device) -> Vec<(String, String)> {
    device
        .monitor()
        .sequence()
        .iter()
        .map(|i| {
            let who = match &i.caller {
                Caller::Activity(a) => a.simple_name().to_string(),
                Caller::Fragment { fragment, .. } => fragment.simple_name().to_string(),
            };
            (who, i.name.clone())
        })
        .collect()
}

#[test]
fn launch_runs_create_start_resume_in_order() {
    let mut d = Device::new(lifecycle_app());
    d.launch().unwrap();
    let seq = names(&d);
    assert_eq!(
        seq,
        vec![
            ("A".to_string(), "connect".to_string()),
            ("A".to_string(), "inet".to_string()),
            ("A".to_string(), "InetAddress.getByName".to_string()),
        ]
    );
}

#[test]
fn starting_b_pauses_a_then_creates_b_then_stops_a() {
    let mut d = Device::new(lifecycle_app());
    d.launch().unwrap();
    d.click("go").unwrap();
    let seq = names(&d);
    let tail = &seq[3..];
    assert_eq!(
        tail,
        &[
            ("A".to_string(), "InetAddress.getAllByName".to_string()), // A.onPause
            ("B".to_string(), "Connectivity.getNetworkInfo".to_string()), // B.onCreate
            ("A".to_string(), "InetAddress.getByAddress".to_string()), // A.onStop
        ],
        "real Android order: A.onPause → B.onCreate → … → A.onStop"
    );
}

#[test]
fn back_destroys_b_and_resumes_a() {
    let mut d = Device::new(lifecycle_app());
    d.launch().unwrap();
    d.click("go").unwrap();
    d.back().unwrap();
    let seq = names(&d);
    let tail = &seq[6..];
    assert_eq!(
        tail,
        &[
            ("B".to_string(), "NetworkInfo.isConnected".to_string()), // B.onPause
            ("B".to_string(), "NetworkInfo.getDetailedState".to_string()), // B.onStop
            ("B".to_string(), "IpPrefix.getAddress".to_string()),     // B.onDestroy
            ("A".to_string(), "InetAddress.getByName".to_string()),   // A.onResume
        ]
    );
    assert_eq!(d.signature().unwrap().activity.as_str(), "lc.A");
}

#[test]
fn crash_in_lifecycle_callback_force_closes() {
    let mut app = lifecycle_app();
    let crashy = ClassDef::new("lc.B", well_known::ACTIVITY)
        .with_method(MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("b"))))
        .with_method(
            MethodDef::new("onStart").push(Stmt::Crash { reason: "boom in onStart".into() }),
        );
    app.classes.insert(crashy);
    let mut d = Device::new(app);
    d.launch().unwrap();
    let out = d.click("go").unwrap();
    assert!(
        matches!(out, fd_droidsim::EventOutcome::Crashed { ref reason } if reason.contains("onStart"))
    );
    assert!(d.is_crashed());
}

#[test]
fn finish_inside_lifecycle_callback_is_ignored() {
    let mut app = lifecycle_app();
    let weird = ClassDef::new("lc.B", well_known::ACTIVITY)
        .with_method(MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("b"))))
        .with_method(MethodDef::new("onResume").push(Stmt::Finish));
    app.classes.insert(weird);
    let mut d = Device::new(app);
    d.launch().unwrap();
    d.click("go").unwrap();
    assert_eq!(d.signature().unwrap().activity.as_str(), "lc.B", "finish in onResume ignored");
}
