//! Interpreter-semantics tests: runtime protocol violations crash like
//! real Android, recursion is bounded, and permission grants gate guarded
//! code.

use fd_apk::{ActivityDecl, AndroidApp, Layout, Manifest, Widget, WidgetKind};
use fd_droidsim::{Device, DeviceConfig, EventOutcome};
use fd_smali::{well_known, ClassDef, ClassName, IntentTarget, MethodDef, ResRef, Stmt};

fn shell(on_create: MethodDef) -> AndroidApp {
    let mut app =
        AndroidApp::new(Manifest::new("is").with_activity(ActivityDecl::new("is.Main").launcher()));
    app.layouts.insert("m".into(), Layout::new("m", Widget::new(WidgetKind::Group)));
    app.classes.insert(ClassDef::new("is.Main", well_known::ACTIVITY).with_method(on_create));
    app.finalize_resources();
    app
}

#[test]
fn commit_without_begin_is_an_illegal_state_crash() {
    let app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::TxnCommit),
    );
    let mut d = Device::new(app);
    let out = d.launch().unwrap();
    assert!(matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("IllegalState")));
}

#[test]
fn txn_op_without_begin_is_an_illegal_state_crash() {
    let app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::TxnAdd { container: ResRef::id("c"), fragment: ClassName::new("is.F") }),
    );
    let mut d = Device::new(app);
    assert!(matches!(d.launch().unwrap(), EventOutcome::Crashed { .. }));
}

#[test]
fn inflating_a_missing_layout_crashes_with_inflate_exception() {
    let app = shell(MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("ghost"))));
    let mut d = Device::new(app);
    let out = d.launch().unwrap();
    assert!(
        matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("InflateException"))
    );
}

#[test]
fn attaching_an_unknown_fragment_class_crashes() {
    let app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::GetFragmentManager { support: true })
            .push(Stmt::BeginTransaction)
            .push(Stmt::TxnAdd { container: ResRef::id("c"), fragment: ClassName::new("is.Ghost") })
            .push(Stmt::TxnCommit),
    );
    let mut d = Device::new(app);
    let out = d.launch().unwrap();
    assert!(
        matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("ClassNotFound"))
    );
}

#[test]
fn start_activity_cycle_in_oncreate_overflows() {
    // Main starts Loop; Loop's onCreate starts Loop again, forever.
    let mut app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::NewIntent(IntentTarget::Class("is.Loop".into())))
            .push(Stmt::StartActivity { via_host: false }),
    );
    app.manifest.activities.push(ActivityDecl::new("is.Loop"));
    app.classes.insert(
        ClassDef::new("is.Loop", well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate")
                .push(Stmt::NewIntent(IntentTarget::Class("is.Loop".into())))
                .push(Stmt::StartActivity { via_host: false }),
        ),
    );
    let mut d = Device::new(app);
    let out = d.launch().unwrap();
    assert!(
        matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("StackOverflow")),
        "got {out:?}"
    );
}

#[test]
fn unresolvable_intent_crashes_with_activity_not_found() {
    let app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::NewIntent(IntentTarget::Action("is.NOBODY_HANDLES_THIS".into())))
            .push(Stmt::StartActivity { via_host: false }),
    );
    let mut d = Device::new(app);
    let out = d.launch().unwrap();
    assert!(
        matches!(out, EventOutcome::Crashed { ref reason } if reason.contains("ActivityNotFound"))
    );
}

#[test]
fn runtime_permission_grant_unblocks_a_guarded_launch() {
    let mut app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::RequirePermission { permission: "android.permission.CAMERA".into() })
            .push(Stmt::SetContentView(ResRef::layout("m"))),
    );
    app.manifest.permissions.push("android.permission.CAMERA".into());

    // Denied at install: FC. Grant at runtime: relaunch succeeds.
    let mut config = DeviceConfig::default();
    config.denied_permissions.insert("android.permission.CAMERA".into());
    let mut d = Device::with_config(app, config);
    assert!(matches!(d.launch().unwrap(), EventOutcome::Crashed { .. }));
    d.grant("android.permission.CAMERA");
    assert!(d.launch().unwrap().changed_ui());
    // And revoking breaks it again.
    d.revoke("android.permission.CAMERA");
    assert!(matches!(d.launch().unwrap(), EventOutcome::Crashed { .. }));
}

#[test]
fn set_class_and_put_extra_build_an_intent_without_new_intent() {
    // setClass on a fresh register implicitly creates the intent — the
    // lint flags it as unusual, but the runtime accepts it like Android.
    let mut app = shell(
        MethodDef::new("onCreate")
            .push(Stmt::SetContentView(ResRef::layout("m")))
            .push(Stmt::SetClass("is.Second".into()))
            .push(Stmt::PutExtra { key: "k".into(), value: "v".into() })
            .push(Stmt::StartActivity { via_host: false }),
    );
    app.manifest.activities.push(ActivityDecl::new("is.Second"));
    app.classes.insert(
        ClassDef::new("is.Second", well_known::ACTIVITY)
            .with_method(MethodDef::new("onCreate").push(Stmt::RequireExtra { key: "k".into() })),
    );
    let mut d = Device::new(app);
    assert!(d.launch().unwrap().changed_ui());
    assert_eq!(d.signature().unwrap().activity.as_str(), "is.Second");
}
