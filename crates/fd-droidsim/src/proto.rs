//! The device-agent wire protocol: length-prefixed JSONL frames.
//!
//! One frame is one request or one reply:
//!
//! ```text
//! <decimal payload length> SP <payload JSON> LF
//! ```
//!
//! The payload is a compact-serialized [`Envelope`] — a request id plus
//! an [`AgentRequest`] or [`AgentResponse`] body. The length prefix is
//! the authoritative framing (the trailing newline is a human-debugging
//! courtesy and is verified, not searched for), the id lets the client
//! detect replies to the wrong request, and every decode failure is a
//! typed [`ProtoError`] carrying enough context to reproduce.
//!
//! The decoder ([`FrameBuffer`]) is deliberately paranoid: headers are
//! bounded, lengths are capped at [`MAX_FRAME_LEN`] before any
//! allocation, and arbitrary bytes can never panic it — it is wired into
//! `fd-fuzz` as a mutation target.

use crate::device::DeviceConfig;
use crate::error::DeviceError;
use crate::faults::{FaultLog, FaultRecord};
use crate::monitor::ApiInvocation;
use crate::outcome::{EventOutcome, UiSignature};
use crate::screen::VisibleWidget;
use crate::ScreenObservation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hard cap on one frame's payload length. Packed containers travel
/// hex-encoded inside install requests, so the cap is generous — but it
/// exists, so a corrupt length field can never drive an allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Longest accepted decimal length header (10 digits ≫ [`MAX_FRAME_LEN`]).
const MAX_HEADER_DIGITS: usize = 10;

/// A typed wire-protocol failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The length header is empty or contains a non-digit byte.
    BadLength {
        /// The offending header bytes, lossily rendered.
        header: String,
    },
    /// The length header names a payload longer than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The declared payload length.
        len: usize,
    },
    /// The frame is not terminated by the newline the length prefix
    /// promised.
    MissingNewline,
    /// The payload is not valid JSON of the expected shape.
    BadJson {
        /// The parser's diagnostic.
        detail: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadLength { header } => write!(f, "bad frame length header '{header}'"),
            ProtoError::TooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::MissingNewline => write!(f, "frame not terminated by newline"),
            ProtoError::BadJson { detail } => {
                write!(f, "frame payload is not valid JSON: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// One frame's payload: a request id plus a body.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<T> {
    /// Monotonic per-session request id; replies echo it.
    pub id: u64,
    /// The request or response body.
    pub body: T,
}

// The vendored serde derive does not handle generic types, so the
// envelope's impls are written out by hand: `{"body": …, "id": n}`.
impl<T: Serialize> Serialize for Envelope<T> {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::value::Map::new();
        map.insert("id".to_string(), self.id.to_value());
        map.insert("body".to_string(), self.body.to_value());
        serde::Value::Object(map)
    }
}

impl<T: Deserialize> Deserialize for Envelope<T> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::de::DeError::custom("expected envelope object"))?;
        let id = obj
            .get("id")
            .map(u64::from_value)
            .transpose()?
            .ok_or_else(|| serde::de::DeError::custom("envelope missing 'id'"))?;
        let body = obj
            .get("body")
            .map(T::from_value)
            .transpose()?
            .ok_or_else(|| serde::de::DeError::custom("envelope missing 'body'"))?;
        Ok(Envelope { id, body })
    }
}

/// Everything a client can ask a device agent to do — the wire mirror of
/// [`crate::DeviceApi`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AgentRequest {
    /// Wipe device state and install an app from hex-encoded packed
    /// container bytes.
    Install {
        /// The packed container, hex-encoded (binary-safe in JSON).
        container_hex: String,
        /// Device configuration (denied permissions, fault plan).
        config: DeviceConfig,
    },
    /// [`crate::DeviceApi::launch`].
    Launch,
    /// [`crate::DeviceApi::am_start`].
    AmStart {
        /// The component name.
        component: String,
    },
    /// [`crate::DeviceApi::click`].
    Click {
        /// The widget's resource id.
        id: String,
    },
    /// [`crate::DeviceApi::enter_text`].
    EnterText {
        /// The widget's resource id.
        id: String,
        /// The text to type.
        text: String,
    },
    /// [`crate::DeviceApi::dismiss_overlay`].
    DismissOverlay,
    /// [`crate::DeviceApi::back`].
    Back,
    /// [`crate::DeviceApi::swipe_open_drawer`].
    SwipeOpenDrawer,
    /// [`crate::DeviceApi::reflect_switch_fragment`].
    ReflectSwitchFragment {
        /// The fragment class to switch to.
        fragment: String,
    },
    /// [`crate::DeviceApi::observe`].
    Observe,
    /// [`crate::DeviceApi::signature`].
    Signature,
    /// [`crate::DeviceApi::visible_widgets`].
    VisibleWidgets,
    /// [`crate::DeviceApi::stack_depth`].
    StackDepth,
    /// [`crate::DeviceApi::is_crashed`].
    IsCrashed,
    /// [`crate::DeviceApi::crash_site`].
    CrashSite,
    /// [`crate::DeviceApi::invocations`].
    Invocations,
    /// [`crate::DeviceApi::fault_records_since`].
    FaultRecordsSince {
        /// First record index to return.
        from: usize,
    },
    /// [`crate::DeviceApi::fault_log`].
    FaultLog,
    /// [`crate::DeviceApi::faults_injected`].
    FaultsInjected,
    /// [`crate::DeviceApi::clock`].
    Clock,
    /// [`crate::DeviceApi::advance_clock`].
    AdvanceClock {
        /// Ticks to add.
        ticks: u64,
    },
    /// [`crate::DeviceApi::reset`].
    Reset,
    /// [`crate::DeviceApi::grant`].
    Grant {
        /// The permission to grant.
        permission: String,
    },
    /// [`crate::DeviceApi::revoke`].
    Revoke {
        /// The permission to revoke.
        permission: String,
    },
    /// Liveness probe.
    Ping,
    /// Orderly shutdown; the agent replies and exits its serve loop.
    Shutdown,
}

/// Everything an agent can answer with. Each variant mirrors the return
/// type of the corresponding [`AgentRequest`]; `Result` payloads carry
/// app-level [`DeviceError`]s (an agent that is *working* still reports
/// the simulated device's own failures faithfully).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AgentResponse {
    /// Reply to [`AgentRequest::Install`]; the error string is the
    /// decompile failure, if any.
    Installed(Result<(), String>),
    /// Reply to any event-injection request.
    Outcome(Result<EventOutcome, DeviceError>),
    /// Reply to requests that return nothing on success.
    Unit(Result<(), DeviceError>),
    /// Reply to [`AgentRequest::Observe`].
    Observation(Result<Option<ScreenObservation>, DeviceError>),
    /// Reply to [`AgentRequest::Signature`] and [`AgentRequest::CrashSite`].
    Signature(Result<Option<UiSignature>, DeviceError>),
    /// Reply to [`AgentRequest::VisibleWidgets`].
    Widgets(Result<Vec<VisibleWidget>, DeviceError>),
    /// Reply to [`AgentRequest::IsCrashed`].
    Flag(Result<bool, DeviceError>),
    /// Reply to [`AgentRequest::Invocations`].
    Invocations(Result<Vec<ApiInvocation>, DeviceError>),
    /// Reply to [`AgentRequest::FaultRecordsSince`].
    FaultRecords(Result<Vec<FaultRecord>, DeviceError>),
    /// Reply to [`AgentRequest::FaultLog`].
    FaultLog(Result<FaultLog, DeviceError>),
    /// Reply to counting requests ([`AgentRequest::StackDepth`],
    /// [`AgentRequest::FaultsInjected`]).
    Count(Result<usize, DeviceError>),
    /// Reply to [`AgentRequest::Clock`].
    Clock(Result<u64, DeviceError>),
    /// Reply to [`AgentRequest::Ping`].
    Pong,
    /// Reply to [`AgentRequest::Shutdown`].
    Bye,
}

/// Encodes one frame: `len SP payload LF`.
pub fn encode_frame<T: Serialize>(envelope: &Envelope<T>) -> Vec<u8> {
    let payload = serde_json::to_vec(envelope).expect("protocol envelopes always serialize");
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(format!("{} ", payload.len()).as_bytes());
    out.extend_from_slice(&payload);
    out.push(b'\n');
    out
}

/// Decodes a frame payload into a typed envelope.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<Envelope<T>, ProtoError> {
    serde_json::from_slice(payload).map_err(|e| ProtoError::BadJson { detail: e.to_string() })
}

/// An incremental, panic-free frame decoder: push raw bytes in, pull
/// complete frame payloads out. This is the component `fd-fuzz` mutates.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame's payload, `Ok(None)` if more bytes
    /// are needed, or a typed error if the buffered prefix can never be
    /// a frame (the connection should then be torn down — resyncing a
    /// corrupt length-prefixed stream is guesswork).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        // Header: 1..=MAX_HEADER_DIGITS digits, then a space.
        let mut digits = 0usize;
        let mut len = 0usize;
        loop {
            match self.buf.get(digits) {
                None => {
                    // Incomplete header — but only if it could still
                    // become valid.
                    if digits > MAX_HEADER_DIGITS {
                        return Err(ProtoError::BadLength {
                            header: String::from_utf8_lossy(&self.buf[..digits]).into_owned(),
                        });
                    }
                    return Ok(None);
                }
                Some(b' ') if digits > 0 => break,
                Some(b) if b.is_ascii_digit() && digits < MAX_HEADER_DIGITS => {
                    len = len * 10 + (b - b'0') as usize;
                    digits += 1;
                }
                Some(_) => {
                    let end = (digits + 1).min(self.buf.len()).min(MAX_HEADER_DIGITS + 1);
                    return Err(ProtoError::BadLength {
                        header: String::from_utf8_lossy(&self.buf[..end]).into_owned(),
                    });
                }
            }
        }
        if len > MAX_FRAME_LEN {
            return Err(ProtoError::TooLarge { len });
        }
        let start = digits + 1;
        let end = start + len;
        if self.buf.len() < end + 1 {
            return Ok(None); // payload + newline not all here yet
        }
        if self.buf[end] != b'\n' {
            return Err(ProtoError::MissingNewline);
        }
        let payload = self.buf[start..end].to_vec();
        self.buf.drain(..end + 1);
        Ok(Some(payload))
    }
}

/// Decodes every complete frame in `bytes` as an [`AgentRequest`]
/// envelope — the whole-pipeline entry the fuzz harness drives, covering
/// the framing layer and the JSON layer in one call.
pub fn decode_request_stream(bytes: &[u8]) -> Result<Vec<Envelope<AgentRequest>>, ProtoError> {
    let mut fb = FrameBuffer::new();
    fb.push(bytes);
    let mut out = Vec::new();
    while let Some(payload) = fb.next_frame()? {
        out.push(decode_payload::<AgentRequest>(&payload)?);
    }
    Ok(out)
}

/// Hex-encodes bytes (lowercase) — how packed containers travel inside
/// JSON frames.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Decodes lowercase/uppercase hex back to bytes.
pub fn from_hex(s: &str) -> Result<Vec<u8>, ProtoError> {
    let bytes = s.as_bytes();
    if bytes.len() % 2 != 0 {
        return Err(ProtoError::BadJson { detail: "odd-length hex string".to_string() });
    }
    let nibble = |b: u8| -> Result<u8, ProtoError> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| ProtoError::BadJson { detail: format!("non-hex byte 0x{b:02x}") })
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let env = Envelope { id: 7, body: AgentRequest::Click { id: "go".to_string() } };
        let bytes = encode_frame(&env);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        let payload = fb.next_frame().expect("valid").expect("complete");
        let back: Envelope<AgentRequest> = decode_payload(&payload).expect("parses");
        assert_eq!(back, env);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let env = Envelope { id: 1, body: AgentRequest::Ping };
        let bytes = encode_frame(&env);
        let mut fb = FrameBuffer::new();
        for cut in 0..bytes.len() {
            let mut partial = FrameBuffer::new();
            partial.push(&bytes[..cut]);
            assert_eq!(partial.next_frame().expect("prefix is never an error"), None, "cut {cut}");
        }
        fb.push(&bytes);
        fb.push(&bytes);
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_some());
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn corrupt_headers_are_typed_errors() {
        let mut fb = FrameBuffer::new();
        fb.push(b"xyz 123\n");
        assert!(matches!(fb.next_frame(), Err(ProtoError::BadLength { .. })));

        let mut fb = FrameBuffer::new();
        fb.push(b"99999999999 {}\n"); // 11 digits: header too long
        assert!(matches!(fb.next_frame(), Err(ProtoError::BadLength { .. })));

        let mut fb = FrameBuffer::new();
        fb.push(format!("{} {{}}\n", MAX_FRAME_LEN + 1).as_bytes());
        assert!(matches!(fb.next_frame(), Err(ProtoError::TooLarge { .. })));

        let mut fb = FrameBuffer::new();
        fb.push(b"2 {}X"); // length says 2, terminator is not newline
        assert!(matches!(fb.next_frame(), Err(ProtoError::MissingNewline)));
    }

    #[test]
    fn bad_json_is_a_typed_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"5 {!!!}\n");
        assert!(matches!(decode_request_stream(&bytes), Err(ProtoError::BadJson { .. })));
    }

    #[test]
    fn hex_roundtrips() {
        let data: Vec<u8> = (0..=255u8).collect();
        let hex = to_hex(&data);
        assert_eq!(from_hex(&hex).expect("roundtrips"), data);
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex");
    }

    #[test]
    fn every_request_serializes_and_parses() {
        let reqs = vec![
            AgentRequest::Install {
                container_hex: "00ff".to_string(),
                config: DeviceConfig::default(),
            },
            AgentRequest::Launch,
            AgentRequest::AmStart { component: "a.B".to_string() },
            AgentRequest::EnterText { id: "f".to_string(), text: "x".to_string() },
            AgentRequest::FaultRecordsSince { from: 3 },
            AgentRequest::AdvanceClock { ticks: 50 },
            AgentRequest::Shutdown,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let env = Envelope { id: i as u64, body: req };
            let bytes = encode_frame(&env);
            let parsed = decode_request_stream(&bytes).expect("valid stream");
            assert_eq!(parsed, vec![env]);
        }
    }
}
