//! Runtime UI state: one entry of the activity back stack.

use fd_apk::{Layout, Widget, WidgetKind};
use fd_smali::{ClassName, MethodName};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::intent::Intent;
use crate::outcome::UiSignature;

/// A modal overlay currently covering the screen.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overlay {
    /// A dialog box.
    Dialog {
        /// The dialog's label.
        id: String,
    },
    /// An action-bar popup menu.
    PopupMenu {
        /// The menu's label.
        id: String,
    },
}

/// A fragment currently attached to a container of the activity layout.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentPane {
    /// The fragment class.
    pub fragment: ClassName,
    /// The fragment's inflated layout, if its `onCreateView` inflated one.
    pub layout: Option<Layout>,
    /// Whether the fragment was attached through a `FragmentManager`
    /// transaction (`false` for `attach-direct` loads, which reflection
    /// cannot see).
    pub via_manager: bool,
}

/// A click/text handler wired by `set-on-click`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Handler {
    /// The class defining the handler method.
    pub class: ClassName,
    /// The handler method.
    pub method: MethodName,
    /// If the wiring happened in fragment code, that fragment.
    pub fragment: Option<ClassName>,
}

/// One visible widget, as an automation framework would report it
/// (uiautomator dump / Robotium's view list).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibleWidget {
    /// Resource-ID name, if the widget has one.
    pub id: Option<String>,
    /// View kind.
    pub kind: WidgetKind,
    /// Display text.
    pub text: String,
    /// Whether it reacts to clicks (declared clickable and a handler may
    /// or may not be attached — clicking a handler-less widget is a
    /// no-op, as on a real device).
    pub clickable: bool,
    /// Synthetic screen bounds `(x, y, w, h)` in the top-to-bottom,
    /// left-to-right order the paper's Case-3 clicking sweep uses.
    pub bounds: (u32, u32, u32, u32),
}

/// One activity instance on the back stack with its runtime UI.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Screen {
    /// The activity class.
    pub activity: ClassName,
    /// The intent it was launched with.
    pub intent: Intent,
    /// The activity's inflated layout (if `onCreate` set one).
    pub layout: Option<Layout>,
    /// Attached fragments, keyed by container resource-ID name.
    pub fragments: BTreeMap<String, FragmentPane>,
    /// Click handlers keyed by widget resource-ID name.
    pub handlers: BTreeMap<String, Handler>,
    /// Current text of input widgets, keyed by resource-ID name.
    pub inputs: BTreeMap<String, String>,
    /// Drawer IDs currently open.
    pub open_drawers: BTreeSet<String>,
    /// The modal overlay, if any.
    pub overlay: Option<Overlay>,
}

impl Screen {
    /// Creates an empty screen for an activity.
    pub fn new(activity: ClassName, intent: Intent) -> Self {
        Screen {
            activity,
            intent,
            layout: None,
            fragments: BTreeMap::new(),
            handlers: BTreeMap::new(),
            inputs: BTreeMap::new(),
            open_drawers: BTreeSet::new(),
            overlay: None,
        }
    }

    /// The fragment-level UI signature of this screen: activity class +
    /// the set of manager-attached fragments + overlay kind + open
    /// drawers. This is the state identity FragDroid distinguishes;
    /// activity-level tools use only the first component.
    pub fn signature(&self) -> UiSignature {
        UiSignature {
            activity: self.activity.clone(),
            fragments: self
                .fragments
                .iter()
                .map(|(container, pane)| (container.clone(), pane.fragment.clone()))
                .collect(),
            overlay: self.overlay.as_ref().map(|o| match o {
                Overlay::Dialog { id } => format!("dialog:{id}"),
                Overlay::PopupMenu { id } => format!("menu:{id}"),
            }),
            open_drawers: self.open_drawers.clone(),
        }
    }

    /// The fragments attached through a `FragmentManager` — what Robotium
    /// can enumerate by reflecting `FragmentManager.getFragments()`.
    /// Direct-attached panes are invisible here, which is why FragDroid
    /// "cannot determine whether the Fragment is a real loading" for them.
    pub fn manager_fragments(&self) -> impl Iterator<Item = (&str, &ClassName)> {
        self.fragments
            .iter()
            .filter(|(_, pane)| pane.via_manager)
            .map(|(container, pane)| (container.as_str(), &pane.fragment))
    }

    /// Which fragment (if any) owns the widget with resource-ID `id`,
    /// judged by whose inflated layout declares it.
    pub fn owner_fragment_of(&self, id: &str) -> Option<&ClassName> {
        for pane in self.fragments.values() {
            if let Some(layout) = &pane.layout {
                if layout.root.find_by_id(id).is_some() {
                    return Some(&pane.fragment);
                }
            }
        }
        None
    }

    /// The widgets currently visible, in the top-to-bottom/left-to-right
    /// order the paper's clicking sweep assumes. Traversal: overlay (a
    /// modal blocks everything else) → activity layout (closed drawers
    /// skipped) → fragment panes in container order.
    pub fn visible_widgets(&self) -> Vec<VisibleWidget> {
        let mut out = Vec::new();
        let mut row = 0u32;

        if let Some(overlay) = &self.overlay {
            // A modal overlay exposes only its own dismiss surface: we
            // report it as a single pseudo-widget so drivers can see that
            // something is covering the UI.
            let text = match overlay {
                Overlay::Dialog { id } => format!("dialog:{id}"),
                Overlay::PopupMenu { id } => format!("menu:{id}"),
            };
            out.push(VisibleWidget {
                id: None,
                kind: WidgetKind::Group,
                text,
                clickable: false,
                bounds: (0, 0, 720, 1280),
            });
            return out;
        }

        if let Some(layout) = &self.layout {
            self.collect_visible(&layout.root, &mut out, &mut row, true);
        }
        for (container, pane) in &self.fragments {
            // A fragment pane is visible only if its container widget is.
            if self.container_visible(container) {
                if let Some(layout) = &pane.layout {
                    self.collect_visible(&layout.root, &mut out, &mut row, true);
                }
            }
        }
        out
    }

    fn container_visible(&self, container: &str) -> bool {
        let Some(layout) = &self.layout else { return true };
        // The container is visible unless it sits inside a closed drawer.
        fn search(
            w: &Widget,
            container: &str,
            inside_closed: bool,
            open: &BTreeSet<String>,
        ) -> Option<bool> {
            let closed_here = matches!(w.kind, WidgetKind::Drawer)
                && !w.id.as_deref().map(|id| open.contains(id)).unwrap_or(false);
            let inside = inside_closed || closed_here;
            if w.id.as_deref() == Some(container) {
                return Some(!inside);
            }
            for child in &w.children {
                if let Some(found) = search(child, container, inside, open) {
                    return Some(found);
                }
            }
            None
        }
        search(&layout.root, container, false, &self.open_drawers).unwrap_or(true)
    }

    fn collect_visible(
        &self,
        widget: &Widget,
        out: &mut Vec<VisibleWidget>,
        row: &mut u32,
        parent_visible: bool,
    ) {
        let mut visible = parent_visible && widget.visible;
        if matches!(widget.kind, WidgetKind::Drawer) {
            let open =
                widget.id.as_deref().map(|id| self.open_drawers.contains(id)).unwrap_or(false);
            visible = parent_visible && open;
        }
        if visible {
            out.push(VisibleWidget {
                id: widget.id.clone(),
                kind: widget.kind,
                text: widget.text.clone(),
                clickable: widget.clickable,
                bounds: (16, 64 + *row * 48, 688, 40),
            });
            *row += 1;
        }
        for child in &widget.children {
            self.collect_visible(child, out, row, visible);
        }
    }

    /// Finds a visible widget by resource-ID.
    pub fn visible_widget(&self, id: &str) -> Option<VisibleWidget> {
        self.visible_widgets().into_iter().find(|w| w.id.as_deref() == Some(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_apk::Layout;

    fn screen_with_drawer() -> Screen {
        let layout = Layout::new(
            "main",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::ImageButton).with_id("hamburger"))
                .with_child(Widget::new(WidgetKind::Drawer).with_id("drawer").with_child(
                    Widget::new(WidgetKind::TextView).with_id("menu_item").clickable(true),
                ))
                .with_child(Widget::new(WidgetKind::FragmentContainer).with_id("content")),
        );
        let mut s = Screen::new("a.Main".into(), Intent::empty());
        s.layout = Some(layout);
        s
    }

    #[test]
    fn closed_drawer_hides_its_children() {
        let s = screen_with_drawer();
        let ids: Vec<_> = s.visible_widgets().into_iter().filter_map(|w| w.id).collect();
        assert!(ids.contains(&"hamburger".to_string()));
        assert!(!ids.contains(&"drawer".to_string()));
        assert!(!ids.contains(&"menu_item".to_string()));
    }

    #[test]
    fn open_drawer_reveals_children() {
        let mut s = screen_with_drawer();
        s.open_drawers.insert("drawer".into());
        let ids: Vec<_> = s.visible_widgets().into_iter().filter_map(|w| w.id).collect();
        assert!(ids.contains(&"menu_item".to_string()));
    }

    #[test]
    fn overlay_masks_everything() {
        let mut s = screen_with_drawer();
        s.overlay = Some(Overlay::Dialog { id: "confirm".into() });
        let widgets = s.visible_widgets();
        assert_eq!(widgets.len(), 1);
        assert!(widgets[0].text.contains("confirm"));
    }

    #[test]
    fn fragment_pane_widgets_are_listed_after_activity_widgets() {
        let mut s = screen_with_drawer();
        s.fragments.insert(
            "content".into(),
            FragmentPane {
                fragment: "a.HomeFragment".into(),
                layout: Some(Layout::new(
                    "frag_home",
                    Widget::new(WidgetKind::Button).with_id("frag_btn"),
                )),
                via_manager: true,
            },
        );
        let ids: Vec<_> = s.visible_widgets().into_iter().filter_map(|w| w.id).collect();
        let h = ids.iter().position(|i| i == "hamburger").unwrap();
        let f = ids.iter().position(|i| i == "frag_btn").unwrap();
        assert!(h < f);
    }

    #[test]
    fn fragment_in_closed_drawer_container_is_hidden() {
        let layout = Layout::new(
            "main",
            Widget::new(WidgetKind::Group).with_child(
                Widget::new(WidgetKind::Drawer).with_id("drawer").with_child(
                    Widget::new(WidgetKind::FragmentContainer).with_id("drawer_content"),
                ),
            ),
        );
        let mut s = Screen::new("a.Main".into(), Intent::empty());
        s.layout = Some(layout);
        s.fragments.insert(
            "drawer_content".into(),
            FragmentPane {
                fragment: "a.F".into(),
                layout: Some(Layout::new("f", Widget::new(WidgetKind::Button).with_id("b"))),
                via_manager: true,
            },
        );
        assert!(s.visible_widget("b").is_none());
        s.open_drawers.insert("drawer".into());
        assert!(s.visible_widget("b").is_some());
    }

    #[test]
    fn signature_reflects_fragments_and_overlay() {
        let mut s = screen_with_drawer();
        let base = s.signature();
        s.fragments.insert(
            "content".into(),
            FragmentPane { fragment: "a.F".into(), layout: None, via_manager: true },
        );
        let with_fragment = s.signature();
        assert_ne!(base, with_fragment);
        s.overlay = Some(Overlay::PopupMenu { id: "m".into() });
        assert_ne!(with_fragment, s.signature());
    }

    #[test]
    fn owner_fragment_of_maps_widget_to_pane() {
        let mut s = screen_with_drawer();
        s.fragments.insert(
            "content".into(),
            FragmentPane {
                fragment: "a.F".into(),
                layout: Some(Layout::new("f", Widget::new(WidgetKind::Button).with_id("fb"))),
                via_manager: true,
            },
        );
        assert_eq!(s.owner_fragment_of("fb").unwrap().as_str(), "a.F");
        assert!(s.owner_fragment_of("hamburger").is_none());
    }
}
