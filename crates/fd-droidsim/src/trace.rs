//! Record & replay — the R&R testing technique of the paper's §I.
//!
//! "Such technique could record the UI events triggered by human testers
//! and translate them to scripts. The scripts can then be executed on
//! other devices to drive the app running through replaying the recorded
//! UI events."
//!
//! [`Recorder`] wraps a device, forwards every event, and logs the
//! operation plus the UI signature it produced. [`replay`] executes the
//! recorded script on a fresh device and verifies each step lands in the
//! recorded state — the divergence check real R&R tools need because of
//! timing; here divergence signals an app or script mismatch.

use crate::device::Device;
use crate::error::DeviceError;
use crate::outcome::{EventOutcome, UiSignature};
use crate::script::{Op, TestScript};
use serde::{Deserialize, Serialize};

/// One recorded step: the operation and the fragment-level state observed
/// after it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// The operation injected.
    pub op: Op,
    /// The state after the operation (`None` = app not running).
    pub after: Option<UiSignature>,
}

/// A recorded session.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Converts the trace into a plain replayable script (dropping the
    /// recorded states).
    pub fn to_script(&self, name: impl Into<String>) -> TestScript {
        TestScript::new(name, self.steps.iter().map(|s| s.op.clone()).collect())
    }

    /// Serializes to JSON (the "script file" an R&R tool would save).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parses the JSON form.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Records a session against a device.
pub struct Recorder {
    device: Device,
    trace: Trace,
}

impl Recorder {
    /// Starts recording on a fresh device.
    pub fn new(device: Device) -> Self {
        Recorder { device, trace: Trace::default() }
    }

    /// The device, for observations between events.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Injects one operation, recording it with the resulting state.
    pub fn step(&mut self, op: Op) -> Result<EventOutcome, DeviceError> {
        let result = match &op {
            Op::Launch => self.device.launch(),
            Op::ForceStart(c) => self.device.am_start(c.as_str()),
            Op::Click(id) => self.device.click(id),
            Op::EnterText { id, text } => {
                self.device.enter_text(id, text).map(|()| EventOutcome::NoChange)
            }
            Op::DismissOverlay => self.device.dismiss_overlay(),
            Op::Back => self.device.back(),
            Op::SwipeOpenDrawer => self.device.swipe_open_drawer(),
            Op::ReflectSwitch(f) => self.device.reflect_switch_fragment(f.as_str()),
        };
        if result.is_ok() {
            self.trace.steps.push(TraceStep { op, after: self.device.signature() });
        }
        result
    }

    /// Stops recording and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// How a replay ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Every step reproduced its recorded state.
    Faithful,
    /// Step `index` executed but landed in a different state.
    Diverged {
        /// The first diverging step.
        index: usize,
        /// The state the recording expected.
        expected: Option<UiSignature>,
        /// The state the replay produced.
        actual: Option<UiSignature>,
    },
    /// Step `index` was rejected by the device (widget missing, …).
    Rejected {
        /// The failing step.
        index: usize,
        /// The device's error.
        error: DeviceError,
    },
}

/// Replays a trace on a fresh device, checking each step's state.
pub fn replay(device: &mut Device, trace: &Trace) -> ReplayOutcome {
    for (index, step) in trace.steps.iter().enumerate() {
        let result = match &step.op {
            Op::Launch => device.launch(),
            Op::ForceStart(c) => device.am_start(c.as_str()),
            Op::Click(id) => device.click(id),
            Op::EnterText { id, text } => {
                device.enter_text(id, text).map(|()| EventOutcome::NoChange)
            }
            Op::DismissOverlay => device.dismiss_overlay(),
            Op::Back => device.back(),
            Op::SwipeOpenDrawer => device.swipe_open_drawer(),
            Op::ReflectSwitch(f) => device.reflect_switch_fragment(f.as_str()),
        };
        if let Err(error) = result {
            return ReplayOutcome::Rejected { index, error };
        }
        if device.signature() != step.after {
            return ReplayOutcome::Diverged {
                index,
                expected: step.after.clone(),
                actual: device.signature(),
            };
        }
    }
    ReplayOutcome::Faithful
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        // Reuse the fig2 template through a minimal local app is overkill;
        // build on the generated quickstart-like structure via fd-apk
        // primitives instead. For trace tests a tiny two-screen app is
        // enough.
        use fd_apk::{ActivityDecl, AndroidApp, Layout, Manifest, Widget, WidgetKind};
        use fd_smali::{well_known, ClassDef, IntentTarget, MethodDef, ResRef, Stmt};
        let mut app = AndroidApp::new(
            Manifest::new("rr")
                .with_activity(ActivityDecl::new("rr.Main").launcher())
                .with_activity(ActivityDecl::new("rr.Second")),
        );
        app.layouts.insert(
            "m".into(),
            Layout::new(
                "m",
                Widget::new(WidgetKind::Group)
                    .with_child(Widget::new(WidgetKind::Button).with_id("go"))
                    .with_child(Widget::new(WidgetKind::EditText).with_id("note")),
            ),
        );
        app.layouts.insert("s".into(), Layout::new("s", Widget::new(WidgetKind::Group)));
        app.classes.insert(
            ClassDef::new("rr.Main", well_known::ACTIVITY)
                .with_method(
                    MethodDef::new("onCreate")
                        .push(Stmt::SetContentView(ResRef::layout("m")))
                        .push(Stmt::SetOnClick {
                            widget: ResRef::id("go"),
                            handler: "onGo".into(),
                        }),
                )
                .with_method(
                    MethodDef::new("onGo")
                        .push(Stmt::NewIntent(IntentTarget::Class("rr.Second".into())))
                        .push(Stmt::StartActivity { via_host: false }),
                ),
        );
        app.classes.insert(ClassDef::new("rr.Second", well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("s"))),
        ));
        app.finalize_resources();
        Device::new(app)
    }

    fn session() -> Trace {
        let mut rec = Recorder::new(device());
        rec.step(Op::Launch).unwrap();
        rec.step(Op::EnterText { id: "note".into(), text: "hello".into() }).unwrap();
        rec.step(Op::Click("go".into())).unwrap();
        rec.step(Op::Back).unwrap();
        rec.finish()
    }

    #[test]
    fn replay_of_recording_is_faithful() {
        let trace = session();
        assert_eq!(trace.steps.len(), 4);
        let mut fresh = device();
        assert_eq!(replay(&mut fresh, &trace), ReplayOutcome::Faithful);
    }

    #[test]
    fn replay_detects_divergence_when_app_changes() {
        let mut trace = session();
        // Tamper with a recorded state: the replay must notice.
        if let Some(sig) = &mut trace.steps[2].after {
            sig.activity = "rr.Elsewhere".into();
        }
        let mut fresh = device();
        assert!(matches!(replay(&mut fresh, &trace), ReplayOutcome::Diverged { index: 2, .. }));
    }

    #[test]
    fn replay_reports_rejected_steps() {
        let mut trace = session();
        trace.steps[2].op = Op::Click("nonexistent".into());
        let mut fresh = device();
        assert!(matches!(replay(&mut fresh, &trace), ReplayOutcome::Rejected { index: 2, .. }));
    }

    #[test]
    fn trace_json_roundtrip_and_script_conversion() {
        let trace = session();
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        let script = trace.to_script("session");
        assert_eq!(script.ops.len(), 4);
        assert_eq!(script.ops[0], Op::Launch);
    }
}
