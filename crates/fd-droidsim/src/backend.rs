//! The device abstraction: one trait over the observation/injection
//! surface the FragDroid driver uses, with pluggable backends.
//!
//! The driver historically constructed the concrete in-process
//! [`Device`] directly, which welded the exploration loop to one crash
//! boundary (`catch_unwind` — unable to contain stack overflow or OOM in
//! a misbehaving app). [`DeviceApi`] abstracts the surface so the same
//! driver can run against:
//!
//! * [`InProcessDevice`] — today's simulator, zero overhead, byte-identical
//!   behavior to the pre-trait driver;
//! * [`crate::SubprocessDevice`] — a `device-agent` child process behind
//!   a length-prefixed JSONL protocol (true crash isolation);
//! * [`MockAdbDevice`] — the in-process simulator plus a recorded `adb`
//!   command stream, keeping the trait surface honest about what a real
//!   phone transport would have to carry.
//!
//! Every method returns `Result`, because for a remote backend *any*
//! request can fail at the transport layer; such failures carry
//! [`crate::ErrorClass::Infrastructure`] and must never be attributed to
//! the app under test.

use crate::device::{Device, DeviceConfig};
use crate::error::DeviceError;
use crate::faults::{FaultLog, FaultRecord};
use crate::monitor::ApiInvocation;
use crate::outcome::{EventOutcome, UiSignature};
use crate::screen::VisibleWidget;
use fd_apk::AndroidApp;
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};

/// Which device backend a run should use — the configuration-level
/// choice, surfaced as `fd-cli run/corpus --backend`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceBackend {
    /// The simulator in the driver's own process (the default).
    #[default]
    InProcess,
    /// A `device-agent` child process behind the wire protocol.
    Subprocess,
    /// The in-process simulator plus a recorded `adb` command stream.
    MockAdb,
}

impl DeviceBackend {
    /// The CLI spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            DeviceBackend::InProcess => "in-process",
            DeviceBackend::Subprocess => "subprocess",
            DeviceBackend::MockAdb => "mock-adb",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "in-process" => Some(DeviceBackend::InProcess),
            "subprocess" => Some(DeviceBackend::Subprocess),
            "mock-adb" => Some(DeviceBackend::MockAdb),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeviceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the driver needs to know about the foreground screen, in one
/// owned value — references cannot cross a process boundary, so the
/// trait returns this DTO instead of `&Screen`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreenObservation {
    /// The fragment-level UI signature.
    pub signature: UiSignature,
    /// The foreground activity.
    pub activity: ClassName,
    /// Fragments confirmed through the `FragmentManager`, in container
    /// order.
    pub manager_fragments: Vec<ClassName>,
}

impl ScreenObservation {
    /// Builds the DTO from a live screen.
    pub fn of(screen: &crate::Screen) -> Self {
        ScreenObservation {
            signature: screen.signature(),
            activity: screen.activity.clone(),
            manager_fragments: screen.manager_fragments().map(|(_, f)| f.clone()).collect(),
        }
    }
}

/// The observation/injection surface the driver runs against. Object
/// safe; all observation methods take `&mut self` and return `Result`
/// because a remote backend answers them with requests that can fail.
///
/// A backend is reusable across apps: [`DeviceApi::install_app`] wipes
/// device state and installs a fresh app, which is what lets a device
/// pool hand the same (possibly remote) device to consecutive apps
/// without losing determinism — a fresh install is a fresh simulator.
pub trait DeviceApi: Send {
    /// Wipes device state and installs `app` under `config` — `adb
    /// install` plus the pre-Android-6 permission grant.
    fn install_app(&mut self, app: &AndroidApp, config: DeviceConfig) -> Result<(), DeviceError>;

    /// Launches the app from its launcher activity.
    fn launch(&mut self) -> Result<EventOutcome, DeviceError>;
    /// Force-starts an activity by component name (`am start -n`).
    fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError>;
    /// Clicks the visible widget with resource-ID `id`.
    fn click(&mut self, id: &str) -> Result<EventOutcome, DeviceError>;
    /// Types text into a visible `EditText`.
    fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError>;
    /// Dismisses a dialog/menu by clicking blank space.
    fn dismiss_overlay(&mut self) -> Result<EventOutcome, DeviceError>;
    /// Presses the hardware back button.
    fn back(&mut self) -> Result<EventOutcome, DeviceError>;
    /// Opens the first closed drawer with a left-edge swipe.
    fn swipe_open_drawer(&mut self) -> Result<EventOutcome, DeviceError>;
    /// Reflectively switches the current activity to `fragment`.
    fn reflect_switch_fragment(&mut self, fragment: &str) -> Result<EventOutcome, DeviceError>;

    /// The foreground screen's observation, or `None` if nothing is up.
    fn observe(&mut self) -> Result<Option<ScreenObservation>, DeviceError>;
    /// The fragment-level signature of the foreground screen.
    fn signature(&mut self) -> Result<Option<UiSignature>, DeviceError>;
    /// The widgets currently on screen.
    fn visible_widgets(&mut self) -> Result<Vec<VisibleWidget>, DeviceError>;
    /// Back-stack depth.
    fn stack_depth(&mut self) -> Result<usize, DeviceError>;
    /// Whether the app is currently force-closed.
    fn is_crashed(&mut self) -> Result<bool, DeviceError>;
    /// The UI signature at the moment of the last Force-Close.
    fn crash_site(&mut self) -> Result<Option<UiSignature>, DeviceError>;
    /// Every sensitive-API invocation recorded so far.
    fn invocations(&mut self) -> Result<Vec<ApiInvocation>, DeviceError>;
    /// Fault-log records appended at or after index `from` — the
    /// incremental read a tracing cursor needs without shipping the whole
    /// log every event.
    fn fault_records_since(&mut self, from: usize) -> Result<Vec<FaultRecord>, DeviceError>;
    /// The full fault log.
    fn fault_log(&mut self) -> Result<FaultLog, DeviceError>;
    /// Number of faults injected so far.
    fn faults_injected(&mut self) -> Result<usize, DeviceError>;
    /// The simulated clock, in ticks.
    fn clock(&mut self) -> Result<u64, DeviceError>;
    /// Advances the simulated clock (supervisor retry backoff).
    fn advance_clock(&mut self, ticks: u64) -> Result<(), DeviceError>;
    /// Clears a Force-Close and the back stack without reinstalling.
    fn reset(&mut self) -> Result<(), DeviceError>;
    /// Grants a runtime permission.
    fn grant(&mut self, permission: &str) -> Result<(), DeviceError>;
    /// Revokes a runtime permission.
    fn revoke(&mut self, permission: &str) -> Result<(), DeviceError>;

    /// Liveness probe — the pool's health check before handing out a
    /// lease. In-process backends are trivially alive.
    fn ping(&mut self) -> Result<(), DeviceError>;
    /// Which backend this is (for traces and metrics labels).
    fn backend_name(&self) -> &'static str;
}

/// Applies one device request to a concrete [`Device`] — the shared
/// interpreter behind [`InProcessDevice`], [`MockAdbDevice`], and the
/// subprocess agent, so all three backends act on the simulator through
/// the exact same code path.
pub(crate) mod exec {
    use super::*;

    /// A device must be installed before any other request.
    pub(crate) fn require(device: &mut Option<Device>) -> Result<&mut Device, DeviceError> {
        device.as_mut().ok_or(DeviceError::NoApp)
    }
}

/// The default backend: today's in-process simulator behind the trait.
/// Delegation is verbatim, so a run through this wrapper is
/// byte-identical to a run against the bare [`Device`].
#[derive(Debug, Default)]
pub struct InProcessDevice {
    device: Option<Device>,
}

impl InProcessDevice {
    /// An empty device; [`DeviceApi::install_app`] brings the app up.
    pub fn new() -> Self {
        InProcessDevice { device: None }
    }

    /// Wraps an already-constructed simulator.
    pub fn with_device(device: Device) -> Self {
        InProcessDevice { device: Some(device) }
    }

    fn dev(&mut self) -> Result<&mut Device, DeviceError> {
        exec::require(&mut self.device)
    }
}

impl DeviceApi for InProcessDevice {
    fn install_app(&mut self, app: &AndroidApp, config: DeviceConfig) -> Result<(), DeviceError> {
        self.device = Some(Device::with_config(app.clone(), config));
        Ok(())
    }

    fn launch(&mut self) -> Result<EventOutcome, DeviceError> {
        self.dev()?.launch()
    }
    fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError> {
        self.dev()?.am_start(component)
    }
    fn click(&mut self, id: &str) -> Result<EventOutcome, DeviceError> {
        self.dev()?.click(id)
    }
    fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError> {
        self.dev()?.enter_text(id, text)
    }
    fn dismiss_overlay(&mut self) -> Result<EventOutcome, DeviceError> {
        self.dev()?.dismiss_overlay()
    }
    fn back(&mut self) -> Result<EventOutcome, DeviceError> {
        self.dev()?.back()
    }
    fn swipe_open_drawer(&mut self) -> Result<EventOutcome, DeviceError> {
        self.dev()?.swipe_open_drawer()
    }
    fn reflect_switch_fragment(&mut self, fragment: &str) -> Result<EventOutcome, DeviceError> {
        self.dev()?.reflect_switch_fragment(fragment)
    }

    fn observe(&mut self) -> Result<Option<ScreenObservation>, DeviceError> {
        Ok(self.dev()?.current().map(ScreenObservation::of))
    }
    fn signature(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        Ok(self.dev()?.signature())
    }
    fn visible_widgets(&mut self) -> Result<Vec<VisibleWidget>, DeviceError> {
        Ok(self.dev()?.visible_widgets())
    }
    fn stack_depth(&mut self) -> Result<usize, DeviceError> {
        Ok(self.dev()?.stack_depth())
    }
    fn is_crashed(&mut self) -> Result<bool, DeviceError> {
        Ok(self.dev()?.is_crashed())
    }
    fn crash_site(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        Ok(self.dev()?.crash_site().cloned())
    }
    fn invocations(&mut self) -> Result<Vec<ApiInvocation>, DeviceError> {
        Ok(self.dev()?.invocations().cloned().collect())
    }
    fn fault_records_since(&mut self, from: usize) -> Result<Vec<FaultRecord>, DeviceError> {
        let log = self.dev()?.fault_log();
        Ok(log.records.get(from..).unwrap_or_default().to_vec())
    }
    fn fault_log(&mut self) -> Result<FaultLog, DeviceError> {
        Ok(self.dev()?.fault_log().clone())
    }
    fn faults_injected(&mut self) -> Result<usize, DeviceError> {
        Ok(self.dev()?.faults_injected())
    }
    fn clock(&mut self) -> Result<u64, DeviceError> {
        Ok(self.dev()?.clock())
    }
    fn advance_clock(&mut self, ticks: u64) -> Result<(), DeviceError> {
        self.dev()?.advance_clock(ticks);
        Ok(())
    }
    fn reset(&mut self) -> Result<(), DeviceError> {
        self.dev()?.reset();
        Ok(())
    }
    fn grant(&mut self, permission: &str) -> Result<(), DeviceError> {
        self.dev()?.grant(permission);
        Ok(())
    }
    fn revoke(&mut self, permission: &str) -> Result<(), DeviceError> {
        self.dev()?.revoke(permission);
        Ok(())
    }

    fn ping(&mut self) -> Result<(), DeviceError> {
        Ok(())
    }
    fn backend_name(&self) -> &'static str {
        "in-process"
    }
}

/// The in-process simulator plus a log of the `adb` command each request
/// would have been on a real phone. Behavior (and therefore every
/// report) is byte-identical to [`InProcessDevice`]; the recorded stream
/// is what keeps the trait honest — anything the driver needs that has
/// no `adb` spelling would show up here first.
#[derive(Debug, Default)]
pub struct MockAdbDevice {
    inner: InProcessDevice,
    commands: Vec<String>,
}

impl MockAdbDevice {
    /// An empty device with an empty command log.
    pub fn new() -> Self {
        MockAdbDevice::default()
    }

    /// The recorded `adb` command stream, in request order.
    pub fn commands(&self) -> &[String] {
        &self.commands
    }

    fn record(&mut self, cmd: String) {
        self.commands.push(cmd);
    }
}

impl DeviceApi for MockAdbDevice {
    fn install_app(&mut self, app: &AndroidApp, config: DeviceConfig) -> Result<(), DeviceError> {
        self.record(format!("adb install {}.fapk", app.package()));
        self.inner.install_app(app, config)
    }

    fn launch(&mut self) -> Result<EventOutcome, DeviceError> {
        self.record(
            "adb shell am start -a android.intent.action.MAIN -c android.intent.category.LAUNCHER"
                .to_string(),
        );
        self.inner.launch()
    }
    fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError> {
        self.record(format!("adb shell am start -n {component}"));
        self.inner.am_start(component)
    }
    fn click(&mut self, id: &str) -> Result<EventOutcome, DeviceError> {
        self.record(format!("adb shell input tap @{id}"));
        self.inner.click(id)
    }
    fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError> {
        self.record(format!("adb shell input text @{id} '{text}'"));
        self.inner.enter_text(id, text)
    }
    fn dismiss_overlay(&mut self) -> Result<EventOutcome, DeviceError> {
        self.record("adb shell input tap 0 0".to_string());
        self.inner.dismiss_overlay()
    }
    fn back(&mut self) -> Result<EventOutcome, DeviceError> {
        self.record("adb shell input keyevent KEYCODE_BACK".to_string());
        self.inner.back()
    }
    fn swipe_open_drawer(&mut self) -> Result<EventOutcome, DeviceError> {
        self.record("adb shell input swipe 0 400 300 400".to_string());
        self.inner.swipe_open_drawer()
    }
    fn reflect_switch_fragment(&mut self, fragment: &str) -> Result<EventOutcome, DeviceError> {
        self.record(format!("adb shell am instrument -w -e reflect-fragment {fragment}"));
        self.inner.reflect_switch_fragment(fragment)
    }

    fn observe(&mut self) -> Result<Option<ScreenObservation>, DeviceError> {
        self.inner.observe()
    }
    fn signature(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        self.inner.signature()
    }
    fn visible_widgets(&mut self) -> Result<Vec<VisibleWidget>, DeviceError> {
        self.inner.visible_widgets()
    }
    fn stack_depth(&mut self) -> Result<usize, DeviceError> {
        self.inner.stack_depth()
    }
    fn is_crashed(&mut self) -> Result<bool, DeviceError> {
        self.inner.is_crashed()
    }
    fn crash_site(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        self.inner.crash_site()
    }
    fn invocations(&mut self) -> Result<Vec<ApiInvocation>, DeviceError> {
        self.inner.invocations()
    }
    fn fault_records_since(&mut self, from: usize) -> Result<Vec<FaultRecord>, DeviceError> {
        self.inner.fault_records_since(from)
    }
    fn fault_log(&mut self) -> Result<FaultLog, DeviceError> {
        self.inner.fault_log()
    }
    fn faults_injected(&mut self) -> Result<usize, DeviceError> {
        self.inner.faults_injected()
    }
    fn clock(&mut self) -> Result<u64, DeviceError> {
        self.inner.clock()
    }
    fn advance_clock(&mut self, ticks: u64) -> Result<(), DeviceError> {
        self.inner.advance_clock(ticks)
    }
    fn reset(&mut self) -> Result<(), DeviceError> {
        self.record("adb shell am force-stop".to_string());
        self.inner.reset()
    }
    fn grant(&mut self, permission: &str) -> Result<(), DeviceError> {
        self.record(format!("adb shell pm grant {permission}"));
        self.inner.grant(permission)
    }
    fn revoke(&mut self, permission: &str) -> Result<(), DeviceError> {
        self.record(format!("adb shell pm revoke {permission}"));
        self.inner.revoke(permission)
    }

    fn ping(&mut self) -> Result<(), DeviceError> {
        self.inner.ping()
    }
    fn backend_name(&self) -> &'static str {
        "mock-adb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for b in [DeviceBackend::InProcess, DeviceBackend::Subprocess, DeviceBackend::MockAdb] {
            assert_eq!(DeviceBackend::parse(b.name()), Some(b));
        }
        assert_eq!(DeviceBackend::parse("emulator"), None);
        assert_eq!(DeviceBackend::default(), DeviceBackend::InProcess);
    }

    #[test]
    fn uninstalled_backend_refuses_requests() {
        let mut d = InProcessDevice::new();
        assert_eq!(d.launch().unwrap_err(), DeviceError::NoApp);
        assert_eq!(d.clock().unwrap_err(), DeviceError::NoApp);
        assert!(d.ping().is_ok(), "liveness is about the backend, not the app");
    }

    #[test]
    fn mock_adb_records_the_command_stream() {
        let gen = fd_appgen::templates::quickstart();
        let mut app = gen.app.clone();
        app.manifest.add_main_action_everywhere();
        let mut mock = MockAdbDevice::new();
        mock.install_app(&app, DeviceConfig::default()).unwrap();
        mock.launch().unwrap();
        let _ = mock.back();
        let cmds = mock.commands();
        assert!(cmds[0].starts_with("adb install"));
        assert!(cmds.iter().any(|c| c.contains("am start")));
        assert!(cmds.iter().any(|c| c.contains("KEYCODE_BACK")));
    }

    #[test]
    fn in_process_and_mock_adb_observe_identically() {
        let gen = fd_appgen::templates::quickstart();
        let mut app = gen.app.clone();
        app.manifest.add_main_action_everywhere();
        let mut a = InProcessDevice::new();
        let mut b = MockAdbDevice::new();
        a.install_app(&app, DeviceConfig::default()).unwrap();
        b.install_app(&app, DeviceConfig::default()).unwrap();
        assert_eq!(a.launch().unwrap(), b.launch().unwrap());
        assert_eq!(a.observe().unwrap(), b.observe().unwrap());
        assert_eq!(a.visible_widgets().unwrap(), b.visible_widgets().unwrap());
        assert_eq!(a.stack_depth().unwrap(), b.stack_depth().unwrap());
    }
}
