//! The statement interpreter: executes method bodies of the smali-like IR
//! against a [`Device`], implementing Android's runtime semantics for
//! intents, activity starts, fragment transactions, drawers, dialogs and
//! crashes.
//!
//! Execution model: one *event* (an activity `onCreate`, a click handler,
//! a reflective switch) runs to completion or until an [`Interrupt`].
//! Mutations land on the screen the frame is bound to, so a handler that
//! starts a new activity keeps affecting its own screen afterwards.

use crate::device::Device;
use crate::intent::Intent;
use crate::monitor::Caller;
use crate::screen::{FragmentPane, Handler, Overlay};
use fd_smali::{ClassName, Cond, IntentTarget, MethodDef, Stmt};

/// Maximum nested method-call / activity-start depth before the run is
/// aborted as a stack overflow (a `startActivity` cycle in `onCreate`).
pub const MAX_DEPTH: usize = 24;

/// Why execution stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// An uncaught exception: the app force-closes.
    Crash(String),
    /// `finish()` was called: the frame's activity should be popped after
    /// the event completes.
    Finish,
}

/// One executing method's context.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The class whose method is executing (handler lookup / `SetOnClick`
    /// registration use it).
    pub class: ClassName,
    /// Attribution for sensitive-API calls.
    pub owner: Caller,
    /// Index into the device's back stack of the screen this code runs in.
    pub screen_idx: usize,
    /// When running fragment code, the container its pane occupies.
    pub pane: Option<String>,
    /// The "current intent" register (`new Intent` … `startActivity`).
    intent_reg: Option<Intent>,
    /// The pending `FragmentTransaction`, if `beginTransaction` ran.
    txn: Option<Vec<TxnOp>>,
    /// Nesting depth.
    pub depth: usize,
}

impl Frame {
    /// A frame for activity code.
    pub fn activity(class: ClassName, screen_idx: usize, depth: usize) -> Self {
        Frame {
            owner: Caller::Activity(class.clone()),
            class,
            screen_idx,
            pane: None,
            intent_reg: None,
            txn: None,
            depth,
        }
    }

    /// A frame for fragment code hosted by `host`.
    pub fn fragment(
        class: ClassName,
        host: ClassName,
        screen_idx: usize,
        pane: Option<String>,
        depth: usize,
    ) -> Self {
        Frame {
            owner: Caller::Fragment { fragment: class.clone(), host },
            class,
            screen_idx,
            pane,
            intent_reg: None,
            txn: None,
            depth,
        }
    }
}

#[derive(Clone, Debug)]
enum TxnOp {
    Attach { container: String, fragment: ClassName },
}

/// Runs `method` of `class` in the given frame. Returns `Ok(())` on normal
/// completion or the interrupt that stopped it.
pub fn run_method(
    device: &mut Device,
    frame: &mut Frame,
    method: &MethodDef,
) -> Result<(), Interrupt> {
    if frame.depth >= MAX_DEPTH {
        return Err(Interrupt::Crash("StackOverflowError".to_string()));
    }
    let body = method.body.clone();
    run_stmts(device, frame, &body)
}

fn run_stmts(device: &mut Device, frame: &mut Frame, stmts: &[Stmt]) -> Result<(), Interrupt> {
    for stmt in stmts {
        run_stmt(device, frame, stmt)?;
    }
    Ok(())
}

fn eval_cond(device: &Device, frame: &Frame, cond: &Cond) -> bool {
    let screen = device.screen_at(frame.screen_idx);
    match cond {
        Cond::InputEquals { field, expected } => screen
            .map(|s| s.inputs.get(&field.name).map(String::as_str) == Some(expected.as_str()))
            .unwrap_or(false),
        Cond::InputNonEmpty { field } => screen
            .map(|s| s.inputs.get(&field.name).map(|v| !v.is_empty()).unwrap_or(false))
            .unwrap_or(false),
        Cond::HasExtra { key } => screen.map(|s| s.intent.has_extra(key)).unwrap_or(false),
    }
}

fn run_stmt(device: &mut Device, frame: &mut Frame, stmt: &Stmt) -> Result<(), Interrupt> {
    match stmt {
        Stmt::SetContentView(layout_ref) => {
            let layout = device.app().layout(&layout_ref.name).cloned().ok_or_else(|| {
                Interrupt::Crash(format!("InflateException: no layout {}", layout_ref.name))
            })?;
            if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
                screen.layout = Some(layout);
            }
        }
        Stmt::InflateLayout(layout_ref) => {
            let layout = device.app().layout(&layout_ref.name).cloned().ok_or_else(|| {
                Interrupt::Crash(format!("InflateException: no layout {}", layout_ref.name))
            })?;
            if let (Some(container), Some(screen)) =
                (frame.pane.clone(), device.screen_at_mut(frame.screen_idx))
            {
                if let Some(pane) = screen.fragments.get_mut(&container) {
                    pane.layout = Some(layout);
                }
            }
        }
        Stmt::FindViewById(_) => {}
        Stmt::SetOnClick { widget, handler } => {
            let h = Handler {
                class: frame.class.clone(),
                method: handler.clone(),
                fragment: match &frame.owner {
                    Caller::Fragment { fragment, .. } => Some(fragment.clone()),
                    Caller::Activity(_) => None,
                },
            };
            if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
                screen.handlers.insert(widget.name.clone(), h);
            }
        }
        Stmt::NewIntent(target) => {
            frame.intent_reg = Some(match target {
                IntentTarget::Class(c) => Intent::explicit(c.clone()),
                IntentTarget::Action(a) => Intent::implicit(a.clone()),
            });
        }
        Stmt::SetClass(c) => {
            frame.intent_reg.get_or_insert_with(Intent::empty).target = Some(c.clone());
        }
        Stmt::SetAction(a) => {
            frame.intent_reg.get_or_insert_with(Intent::empty).action = Some(a.clone());
        }
        Stmt::PutExtra { key, value } => {
            frame
                .intent_reg
                .get_or_insert_with(Intent::empty)
                .extras
                .insert(key.clone(), value.clone());
        }
        Stmt::StartActivity { via_host: _ } => {
            let intent = frame.intent_reg.take().unwrap_or_else(Intent::empty);
            let target = intent.resolve(&device.app().manifest).ok_or_else(|| {
                Interrupt::Crash(format!(
                    "ActivityNotFoundException: {:?}/{:?}",
                    intent.target, intent.action
                ))
            })?;
            device.start_activity_frame(target, intent, frame.depth + 1)?;
        }
        Stmt::RequireExtra { key } => {
            let ok = device
                .screen_at(frame.screen_idx)
                .map(|s| s.intent.has_extra(key))
                .unwrap_or(false);
            if !ok {
                return Err(Interrupt::Crash(format!(
                    "NullPointerException: missing intent extra '{key}'"
                )));
            }
        }
        Stmt::RequirePermission { permission } => {
            if !device.has_permission(permission) {
                return Err(Interrupt::Crash(format!(
                    "SecurityException: permission denied: {permission}"
                )));
            }
        }
        Stmt::NewInstance(_) | Stmt::NewInstanceStatic(_) | Stmt::InstanceOf(_) => {}
        Stmt::GetFragmentManager { .. } => {}
        Stmt::BeginTransaction => {
            frame.txn = Some(Vec::new());
        }
        Stmt::TxnAdd { container, fragment } | Stmt::TxnReplace { container, fragment } => {
            let txn = frame.txn.as_mut().ok_or_else(|| {
                Interrupt::Crash("IllegalStateException: no transaction in progress".to_string())
            })?;
            txn.push(TxnOp::Attach {
                container: container.name.clone(),
                fragment: fragment.clone(),
            });
        }
        Stmt::TxnCommit => {
            let ops = frame.txn.take().ok_or_else(|| {
                Interrupt::Crash("IllegalStateException: commit without beginTransaction".into())
            })?;
            for TxnOp::Attach { container, fragment } in ops {
                attach_fragment(device, frame, &container, &fragment, true)?;
            }
        }
        Stmt::AttachDirect { container, fragment } => {
            attach_fragment(device, frame, &container.name, fragment, false)?;
        }
        Stmt::ToggleDrawer { drawer } => {
            if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
                if !screen.open_drawers.remove(&drawer.name) {
                    screen.open_drawers.insert(drawer.name.clone());
                }
            }
        }
        Stmt::ShowDialog { id } => {
            if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
                screen.overlay = Some(Overlay::Dialog { id: id.clone() });
            }
        }
        Stmt::ShowPopupMenu { id } => {
            if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
                screen.overlay = Some(Overlay::PopupMenu { id: id.clone() });
            }
        }
        Stmt::InvokeApi { group, name } => {
            device.record_api(group, name, frame.owner.clone());
        }
        Stmt::InvokeMethod { class, method } => {
            // Calls into framework classes (not in the pool) are no-ops;
            // calls into app classes execute with the same UI attribution.
            let Some(def) = device.app().classes.get(class.as_str()) else {
                return Ok(());
            };
            let Some(m) = def.method(method.as_str()).cloned() else {
                return Ok(());
            };
            let mut callee = Frame {
                class: class.clone(),
                owner: frame.owner.clone(),
                screen_idx: frame.screen_idx,
                pane: frame.pane.clone(),
                intent_reg: None,
                txn: None,
                depth: frame.depth + 1,
            };
            run_method(device, &mut callee, &m)?;
        }
        Stmt::Finish => return Err(Interrupt::Finish),
        Stmt::Crash { reason } => return Err(Interrupt::Crash(reason.clone())),
        Stmt::If { cond, then, els } => {
            if eval_cond(device, frame, cond) {
                run_stmts(device, frame, then)?;
            } else {
                run_stmts(device, frame, els)?;
            }
        }
    }
    Ok(())
}

/// Attaches `fragment` into `container` of the frame's screen and runs its
/// `onCreateView`. `via_manager` is false for `attach-direct` loads.
pub fn attach_fragment(
    device: &mut Device,
    frame: &Frame,
    container: &str,
    fragment: &ClassName,
    via_manager: bool,
) -> Result<(), Interrupt> {
    let def = device
        .app()
        .classes
        .get(fragment.as_str())
        .cloned()
        .ok_or_else(|| Interrupt::Crash(format!("ClassNotFoundException: {fragment}")))?;
    if def.is_abstract {
        return Err(Interrupt::Crash(format!("InstantiationError: {fragment} is abstract")));
    }

    let host = match device.screen_at(frame.screen_idx) {
        Some(screen) => screen.activity.clone(),
        None => return Ok(()),
    };
    if let Some(screen) = device.screen_at_mut(frame.screen_idx) {
        screen.fragments.insert(
            container.to_string(),
            FragmentPane { fragment: fragment.clone(), layout: None, via_manager },
        );
    }

    if let Some(on_create_view) = def.method("onCreateView").cloned() {
        let mut f = Frame::fragment(
            fragment.clone(),
            host,
            frame.screen_idx,
            Some(container.to_string()),
            frame.depth + 1,
        );
        run_method(device, &mut f, &on_create_view)?;
    }
    Ok(())
}
