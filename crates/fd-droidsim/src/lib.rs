//! A deterministic Android device/runtime simulator.
//!
//! Real FragDroid runs its test cases on a physical phone: it installs an
//! instrumented APK, drives it over ADB, and observes UI states through
//! Robotium. This crate is that phone. It interprets the executable
//! smali-like IR of [`fd_apk::AndroidApp`]s and exposes exactly the
//! observation/injection surface the tool layer needs:
//!
//! * [`Device`] — install an app, start activities (normally or via the
//!   `am start` facade), inject clicks/text/back, observe the current
//!   [`Screen`] (activity, attached fragments, visible widgets, overlays);
//! * [`interp`] — the statement interpreter: intents, activity lifecycle,
//!   `FragmentManager` transaction semantics, dialogs, popup menus,
//!   navigation drawers, Force-Close crashes;
//! * [`ApiMonitor`] — the XPrivacy-style sensitive-API hook that records
//!   every [`ApiInvocation`] together with the Activity or Fragment whose
//!   code made the call (the raw data behind the paper's Table II);
//! * [`Adb`] + [`script`] — the `adb am start` / `am instrument` facade
//!   and the Robotium-style operation scripts test cases compile to;
//! * [`reflect`]-style forced fragment switching ([`Device::reflect_switch_fragment`]),
//!   with the paper's two failure modes: fragments attached without a
//!   `FragmentManager` (undetectable loading) and fragment constructors
//!   that need parameters (reflection cannot supply them).
//!
//! Determinism: given the same app and the same event sequence, the
//! simulator produces bit-identical traces. All "failure modes" are
//! properties of the app model — or, with a [`faults::FaultPlan`]
//! configured, of a seeded fault injector whose every decision is
//! recorded in a replayable [`faults::FaultLog`].
//!
//! # Example
//!
//! ```
//! use fd_droidsim::Device;
//!
//! let gen = fd_appgen::templates::nav_drawer_wallpapers();
//! let mut device = Device::new(gen.app);
//! device.launch().unwrap();
//! device.click("hamburger_gallery").unwrap();          // open the drawer
//! let out = device.click("menu_favoritesfragment").unwrap();
//! assert!(out.changed_ui());                            // fragment switched
//! assert!(device.invocations().any(|i| i.group == "storage"));
//! ```

pub mod adb;
pub mod agent;
pub mod backend;
pub mod device;
pub mod dump;
pub mod error;
pub mod faults;
pub mod intent;
pub mod interp;
pub mod monitor;
pub mod outcome;
pub mod proto;
pub mod screen;
pub mod script;
pub mod subprocess;
pub mod trace;

pub use adb::Adb;
pub use agent::{serve, AgentOptions};
pub use backend::{DeviceApi, DeviceBackend, InProcessDevice, MockAdbDevice, ScreenObservation};
pub use device::{Device, DeviceConfig};
pub use dump::dump_hierarchy;
pub use error::{DeviceError, ErrorClass};
pub use faults::{FaultConfig, FaultKind, FaultLog, FaultPlan, FaultRecord, FaultSite};
pub use intent::Intent;
pub use monitor::{ApiInvocation, ApiMonitor, Caller, SENSITIVE_APIS};
pub use outcome::{EventOutcome, UiSignature};
pub use screen::{FragmentPane, Overlay, Screen, VisibleWidget};
pub use script::{Op, ScriptReport, TestScript};
pub use subprocess::{AgentTransport, ChildTransport, InMemoryTransport, SubprocessDevice};
pub use trace::{replay, Recorder, ReplayOutcome, Trace, TraceStep};
