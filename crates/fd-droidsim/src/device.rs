//! The simulated device: app installation, activity stack, event injection.

use crate::error::{DeviceError, ReflectError};
use crate::faults::{FaultConfig, FaultKind, FaultLog, FaultPlan, FaultSite, KILL_REASON};
use crate::intent::Intent;
use crate::interp::{self, Frame, Interrupt};
use crate::monitor::{ApiInvocation, ApiMonitor, Caller};
use crate::outcome::{EventOutcome, UiSignature};
use crate::screen::{Screen, VisibleWidget};
use fd_apk::{AndroidApp, ApkError, WidgetKind, ACTION_MAIN};
use fd_smali::{visit, ClassName, Stmt};
use std::collections::BTreeSet;

/// Maximum activity back-stack depth.
const MAX_STACK: usize = 48;

/// Device-level configuration. Serializable so it can cross the wire to
/// a subprocess device agent unchanged.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceConfig {
    /// Permissions to withhold even though the manifest requests them —
    /// reproduces the paper's "some apps failed in the dynamic testing due
    /// to the issues of permissions".
    pub denied_permissions: BTreeSet<String>,
    /// Seeded fault injection (see [`crate::faults`]). `None` — and any
    /// zero-rate config — leaves the device exactly as reliable as it
    /// always was.
    pub faults: Option<FaultConfig>,
}

/// A simulated Android device with one installed app.
#[derive(Clone, Debug)]
pub struct Device {
    app: AndroidApp,
    granted: BTreeSet<String>,
    stack: Vec<Screen>,
    monitor: ApiMonitor,
    crashed: Option<String>,
    /// The UI signature at the moment of the last Force-Close (captured
    /// before the task was cleared) — the crash-dedup key's state part.
    crash_site: Option<UiSignature>,
    faults: FaultPlan,
    /// Injected events so far (faulted or not).
    event_seq: u64,
    /// Simulated clock, in ticks (~ms): one tick per injected event plus
    /// any injected delays and supervisor backoff.
    clock: u64,
}

impl Device {
    /// Creates a device with `app` installed. Manifest permissions are
    /// granted at install time (pre-Android-6 semantics, as in the paper:
    /// "most sensitive operations are allowed by default at the time of
    /// installing an app"), except those in
    /// [`DeviceConfig::denied_permissions`].
    pub fn new(app: AndroidApp) -> Self {
        Self::with_config(app, DeviceConfig::default())
    }

    /// Creates a device with explicit configuration.
    pub fn with_config(app: AndroidApp, config: DeviceConfig) -> Self {
        let granted = app
            .manifest
            .permissions
            .iter()
            .filter(|p| !config.denied_permissions.contains(*p))
            .cloned()
            .collect();
        let faults = config.faults.map(FaultPlan::new).unwrap_or_else(FaultPlan::inert);
        Device {
            app,
            granted,
            stack: Vec::new(),
            monitor: ApiMonitor::new(),
            crashed: None,
            crash_site: None,
            faults,
            event_seq: 0,
            clock: 0,
        }
    }

    /// Installs an app from packed container bytes (decompiling it first),
    /// like `adb install`.
    pub fn install(bytes: &bytes::Bytes) -> Result<Self, ApkError> {
        Ok(Device::new(fd_apk::decompile(bytes)?))
    }

    /// The installed app.
    pub fn app(&self) -> &AndroidApp {
        &self.app
    }

    /// The sensitive-API monitor's log.
    pub fn invocations(&self) -> impl Iterator<Item = &ApiInvocation> {
        self.monitor.invocations()
    }

    /// The monitor itself (read-only).
    pub fn monitor(&self) -> &ApiMonitor {
        &self.monitor
    }

    /// Whether the app is currently force-closed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The crash reason, if crashed.
    pub fn crash_reason(&self) -> Option<&str> {
        self.crashed.as_deref()
    }

    /// The UI signature at the moment of the last Force-Close, captured
    /// before the task was cleared. Together with the crash reason this
    /// is the crash-deduplication key.
    pub fn crash_site(&self) -> Option<&UiSignature> {
        self.crash_site.as_ref()
    }

    /// Clears a Force-Close and the activity back stack **without
    /// reinstalling** — `am force-stop` plus a cleared task. The monitor
    /// log, runtime permission state, simulated clock, and the fault
    /// plan all survive; a following [`Device::launch`] brings the app
    /// back up from its launcher activity.
    pub fn reset(&mut self) {
        self.crashed = None;
        self.crash_site = None;
        self.stack.clear();
    }

    /// The log of every fault injected so far.
    pub fn fault_log(&self) -> &FaultLog {
        self.faults.log()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> usize {
        self.faults.injected()
    }

    /// The simulated clock, in ticks (~ms).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the simulated clock — how a supervisor's retry backoff
    /// spends simulated (not wall-clock) time.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
    }

    /// The foreground screen, if the app is running.
    pub fn current(&self) -> Option<&Screen> {
        if self.crashed.is_some() {
            return None;
        }
        self.stack.last()
    }

    /// The fragment-level signature of the foreground screen.
    pub fn signature(&self) -> Option<UiSignature> {
        self.current().map(Screen::signature)
    }

    /// The widgets currently on screen.
    pub fn visible_widgets(&self) -> Vec<VisibleWidget> {
        self.current().map(|s| s.visible_widgets()).unwrap_or_default()
    }

    /// Back-stack depth.
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    pub(crate) fn screen_at(&self, idx: usize) -> Option<&Screen> {
        self.stack.get(idx)
    }

    pub(crate) fn screen_at_mut(&mut self, idx: usize) -> Option<&mut Screen> {
        self.stack.get_mut(idx)
    }

    pub(crate) fn record_api(&mut self, group: &str, name: &str, caller: Caller) {
        self.monitor.record(group, name, caller);
    }

    pub(crate) fn has_permission(&self, permission: &str) -> bool {
        self.granted.contains(permission)
    }

    /// Grants a permission at runtime.
    pub fn grant(&mut self, permission: impl Into<String>) {
        self.granted.insert(permission.into());
    }

    /// Revokes a permission.
    pub fn revoke(&mut self, permission: &str) {
        self.granted.remove(permission);
    }

    // ------------------------------------------------------------------
    // Activity starting
    // ------------------------------------------------------------------

    /// Runs one lifecycle callback (`onStart`, `onResume`, …) of the
    /// activity at `screen_idx`, if the class defines it. A `finish()`
    /// inside a lifecycle callback is ignored (apps under test here do not
    /// use it there); crashes propagate.
    fn run_lifecycle(
        &mut self,
        screen_idx: usize,
        callback: &str,
        depth: usize,
    ) -> Result<(), Interrupt> {
        let Some(screen) = self.stack.get(screen_idx) else { return Ok(()) };
        let activity = screen.activity.clone();
        let Some(method) =
            self.app.classes.get(activity.as_str()).and_then(|c| c.method(callback)).cloned()
        else {
            return Ok(());
        };
        let mut frame = Frame::activity(activity, screen_idx, depth);
        match interp::run_method(self, &mut frame, &method) {
            Ok(()) | Err(Interrupt::Finish) => Ok(()),
            Err(crash) => Err(crash),
        }
    }

    /// Pops the screen at `idx` with full lifecycle (`onPause`/`onStop`/
    /// `onDestroy`), resuming the newly exposed top.
    pub(crate) fn pop_screen(&mut self, idx: usize) -> Result<(), Interrupt> {
        if idx >= self.stack.len() {
            return Ok(());
        }
        let was_top = idx == self.stack.len() - 1;
        self.run_lifecycle(idx, "onPause", 0)?;
        self.run_lifecycle(idx, "onStop", 0)?;
        self.run_lifecycle(idx, "onDestroy", 0)?;
        self.stack.remove(idx);
        if was_top && !self.stack.is_empty() {
            self.run_lifecycle(self.stack.len() - 1, "onResume", 0)?;
        }
        Ok(())
    }

    /// Pushes a screen for `activity` and runs its creation lifecycle
    /// (`onCreate` → `onStart` → `onResume`), pausing and then stopping
    /// the previously foregrounded activity in the real Android order
    /// (`A.onPause` → `B.onCreate/onStart/onResume` → `A.onStop`). Used by
    /// the interpreter for in-app `startActivity` calls.
    pub(crate) fn start_activity_frame(
        &mut self,
        activity: ClassName,
        intent: Intent,
        depth: usize,
    ) -> Result<(), Interrupt> {
        if self.stack.len() >= MAX_STACK {
            return Err(Interrupt::Crash("StackOverflowError: activity stack".into()));
        }
        let def = self
            .app
            .classes
            .get(activity.as_str())
            .cloned()
            .ok_or_else(|| Interrupt::Crash(format!("ClassNotFoundException: {activity}")))?;

        let prev_idx = self.stack.len().checked_sub(1);
        if let Some(prev) = prev_idx {
            self.run_lifecycle(prev, "onPause", depth)?;
        }

        self.stack.push(Screen::new(activity.clone(), intent));
        let screen_idx = self.stack.len() - 1;
        if let Some(on_create) = def.method("onCreate").cloned() {
            let mut frame = Frame::activity(activity, screen_idx, depth);
            match interp::run_method(self, &mut frame, &on_create) {
                Ok(()) => {}
                Err(Interrupt::Finish) => {
                    // Activity finished inside onCreate: remove it again
                    // and resume whoever was underneath.
                    self.stack.remove(screen_idx);
                    if let Some(prev) = prev_idx {
                        self.run_lifecycle(prev, "onResume", depth)?;
                    }
                    return Ok(());
                }
                Err(crash) => return Err(crash),
            }
        }
        self.run_lifecycle(screen_idx, "onStart", depth)?;
        self.run_lifecycle(screen_idx, "onResume", depth)?;
        if let Some(prev) = prev_idx {
            self.run_lifecycle(prev, "onStop", depth)?;
        }
        Ok(())
    }

    fn crash_out(&mut self, reason: String) -> EventOutcome {
        self.crash_site = self.current().map(Screen::signature);
        self.crashed = Some(reason.clone());
        self.stack.clear();
        EventOutcome::Crashed { reason }
    }

    /// Rolls the fault plan for one injected event at `site`.
    /// `Ok(Some(outcome))` means the fault already decided the event's
    /// fate (dropped event, spurious process kill); `Err` is a transient
    /// device failure; `Ok(None)` lets the event proceed normally —
    /// possibly with a permission freshly revoked behind its back.
    fn inject_fault(&mut self, site: FaultSite) -> Result<Option<EventOutcome>, DeviceError> {
        self.event_seq += 1;
        self.clock += 1;
        match self.faults.roll(self.event_seq, site, &self.granted) {
            None => Ok(None),
            Some(FaultKind::DropEvent) => Ok(Some(EventOutcome::NoChange)),
            Some(FaultKind::AnrDelay { ticks }) => {
                self.clock += ticks;
                Err(DeviceError::Anr { ticks })
            }
            Some(FaultKind::TransientStartFailure) => Err(DeviceError::TransientStart),
            Some(FaultKind::ProcessKill) => Ok(Some(self.crash_out(KILL_REASON.to_string()))),
            Some(FaultKind::RevokePermission { permission }) => {
                self.granted.remove(&permission);
                Ok(None)
            }
        }
    }

    fn classify(&self, before: Option<UiSignature>) -> EventOutcome {
        let after = self.signature();
        match (before, after) {
            (_, None) => EventOutcome::Finished,
            (None, Some(to)) => EventOutcome::UiChanged {
                from: UiSignature {
                    activity: ClassName::new(""),
                    fragments: Default::default(),
                    overlay: None,
                    open_drawers: Default::default(),
                },
                to,
            },
            (Some(from), Some(to)) => {
                if from == to {
                    EventOutcome::NoChange
                } else if to.overlay.is_some() && from.overlay.is_none() && {
                    let mut t = to.clone();
                    t.overlay = None;
                    t == from
                } {
                    EventOutcome::OverlayShown
                } else {
                    EventOutcome::UiChanged { from, to }
                }
            }
        }
    }

    /// Launches the app from its launcher activity, resetting any crash
    /// and clearing the task — the paper's
    /// `am start -n <COMPONENT> -a MAIN -c LAUNCHER` entry method.
    pub fn launch(&mut self) -> Result<EventOutcome, DeviceError> {
        let launcher = self
            .app
            .manifest
            .launcher_activity()
            .map(|d| d.name.clone())
            .ok_or_else(|| DeviceError::Unresolved("no launcher activity".to_string()))?;
        if let Some(faulted) = self.inject_fault(FaultSite::Launch)? {
            return Ok(faulted);
        }
        self.crashed = None;
        self.crash_site = None;
        self.stack.clear();
        let intent =
            Intent { action: Some(ACTION_MAIN.to_string()), ..Intent::explicit(launcher.clone()) };
        match self.start_activity_frame(launcher, intent, 0) {
            Ok(()) => Ok(self.classify(None)),
            Err(Interrupt::Crash(reason)) => Ok(self.crash_out(reason)),
            Err(Interrupt::Finish) => Ok(EventOutcome::Finished),
        }
    }

    /// Force-starts an activity by component name — `am start -n`. Only
    /// works when the activity's manifest entry carries a MAIN action
    /// (FragDroid adds one to every activity during its static phase).
    /// Clears the task first, like starting from a fresh launcher intent.
    pub fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError> {
        let decl = self
            .app
            .manifest
            .activity(component)
            .ok_or_else(|| DeviceError::Unresolved(component.to_string()))?;
        if !decl.handles_action(ACTION_MAIN) {
            return Err(DeviceError::NotForceStartable(decl.name.clone()));
        }
        let name = decl.name.clone();
        if let Some(faulted) = self.inject_fault(FaultSite::ForceStart)? {
            return Ok(faulted);
        }
        self.crashed = None;
        self.crash_site = None;
        self.stack.clear();
        // An empty intent: no extras — activities that require them FC.
        let intent =
            Intent { action: Some(ACTION_MAIN.to_string()), ..Intent::explicit(name.clone()) };
        match self.start_activity_frame(name, intent, 0) {
            Ok(()) => Ok(self.classify(None)),
            Err(Interrupt::Crash(reason)) => Ok(self.crash_out(reason)),
            Err(Interrupt::Finish) => Ok(EventOutcome::Finished),
        }
    }

    // ------------------------------------------------------------------
    // Event injection
    // ------------------------------------------------------------------

    fn require_running(&self) -> Result<(), DeviceError> {
        if self.crashed.is_some() || self.stack.is_empty() {
            return Err(DeviceError::NotRunning);
        }
        Ok(())
    }

    /// Clicks the visible widget with resource-ID `id`.
    pub fn click(&mut self, id: &str) -> Result<EventOutcome, DeviceError> {
        self.require_running()?;
        if let Some(faulted) = self.inject_fault(FaultSite::Click)? {
            return Ok(faulted);
        }
        let screen = self.stack.last().expect("running");
        let widget =
            screen.visible_widget(id).ok_or_else(|| DeviceError::NoSuchWidget(id.to_string()))?;
        if !widget.clickable {
            return Err(DeviceError::NotClickable(id.to_string()));
        }
        let before = self.signature();
        let screen_idx = self.stack.len() - 1;

        // A checkbox toggles its own state before any handler runs.
        if widget.kind == WidgetKind::CheckBox {
            let screen = self.stack.last_mut().expect("running");
            let entry = screen.inputs.entry(id.to_string()).or_default();
            *entry = if entry == "true" { String::new() } else { "true".to_string() };
        }

        let handler = self.stack.last().expect("running").handlers.get(id).cloned();
        let Some(handler) = handler else {
            return Ok(self.classify(before));
        };

        let host = self.stack.last().expect("running").activity.clone();
        let mut frame = match &handler.fragment {
            Some(fragment) => {
                let pane = self.stack.last().and_then(|s| {
                    s.fragments
                        .iter()
                        .find(|(_, p)| &p.fragment == fragment)
                        .map(|(c, _)| c.clone())
                });
                Frame::fragment(handler.class.clone(), host, screen_idx, pane, 0)
            }
            None => {
                let mut f = Frame::activity(handler.class.clone(), screen_idx, 0);
                // Handler classes may be inner classes; attribution stays
                // with the host activity.
                f.owner = Caller::Activity(host);
                f
            }
        };

        let method = self
            .app
            .classes
            .get(handler.class.as_str())
            .and_then(|c| c.method(handler.method.as_str()))
            .cloned();
        let Some(method) = method else {
            return Ok(self.classify(before));
        };

        match interp::run_method(self, &mut frame, &method) {
            Ok(()) => Ok(self.classify(before)),
            Err(Interrupt::Finish) => {
                if let Err(Interrupt::Crash(reason)) = self.pop_screen(frame.screen_idx) {
                    return Ok(self.crash_out(reason));
                }
                Ok(self.classify(before))
            }
            Err(Interrupt::Crash(reason)) => Ok(self.crash_out(reason)),
        }
    }

    /// Types text into a visible `EditText`.
    pub fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError> {
        self.require_running()?;
        if self.inject_fault(FaultSite::EnterText)?.is_some() {
            return Ok(()); // the keystrokes were dropped on the floor
        }
        let screen = self.stack.last().expect("running");
        let widget =
            screen.visible_widget(id).ok_or_else(|| DeviceError::NoSuchWidget(id.to_string()))?;
        if !widget.kind.is_input() {
            return Err(DeviceError::NotEditable(id.to_string()));
        }
        let screen = self.stack.last_mut().expect("running");
        screen.inputs.insert(id.to_string(), text.to_string());
        Ok(())
    }

    /// Dismisses a dialog/menu by "clicking on blank space" (the paper's
    /// Case-3 recovery).
    pub fn dismiss_overlay(&mut self) -> Result<EventOutcome, DeviceError> {
        self.require_running()?;
        if let Some(faulted) = self.inject_fault(FaultSite::DismissOverlay)? {
            return Ok(faulted);
        }
        let before = self.signature();
        let screen = self.stack.last_mut().expect("running");
        screen.overlay = None;
        Ok(self.classify(before))
    }

    /// Presses the hardware back button: dismisses an overlay, else closes
    /// an open drawer, else finishes the foreground activity.
    pub fn back(&mut self) -> Result<EventOutcome, DeviceError> {
        self.require_running()?;
        if let Some(faulted) = self.inject_fault(FaultSite::Back)? {
            return Ok(faulted);
        }
        let before = self.signature();
        let screen = self.stack.last_mut().expect("running");
        if screen.overlay.is_some() {
            screen.overlay = None;
        } else if let Some(first) = screen.open_drawers.iter().next().cloned() {
            screen.open_drawers.remove(&first);
        } else if let Err(Interrupt::Crash(reason)) = self.pop_screen(self.stack.len() - 1) {
            return Ok(self.crash_out(reason));
        }
        Ok(self.classify(before))
    }

    /// A left-edge swipe: opens the first (closed) drawer of the current
    /// activity layout, the gesture alternative of Fig. 2(b).
    pub fn swipe_open_drawer(&mut self) -> Result<EventOutcome, DeviceError> {
        self.require_running()?;
        if let Some(faulted) = self.inject_fault(FaultSite::Swipe)? {
            return Ok(faulted);
        }
        let before = self.signature();
        let screen = self.stack.last_mut().expect("running");
        let drawer = screen.layout.as_ref().and_then(|l| {
            l.root
                .iter()
                .find(|w| w.kind == WidgetKind::Drawer && w.id.is_some())
                .and_then(|w| w.id.clone())
        });
        if let Some(drawer) = drawer {
            screen.open_drawers.insert(drawer);
        }
        Ok(self.classify(before))
    }

    // ------------------------------------------------------------------
    // Reflection
    // ------------------------------------------------------------------

    /// Forcibly switches the current activity to `fragment` through the
    /// Java-reflection mechanism of §VI-A Case 1/2: reflect the host
    /// activity's `FragmentManager`, instantiate the fragment class, and
    /// commit a transaction into the fragment container.
    ///
    /// Fails with the paper's documented failure modes; see
    /// [`ReflectError`].
    pub fn reflect_switch_fragment(&mut self, fragment: &str) -> Result<EventOutcome, DeviceError> {
        self.require_running()?;
        if let Some(faulted) = self.inject_fault(FaultSite::Reflect)? {
            return Ok(faulted);
        }
        let fragment_name = ClassName::new(fragment);
        let fail = |why: ReflectError| DeviceError::ReflectionFailed {
            fragment: fragment_name.clone(),
            why,
        };

        let def = self.app.classes.get(fragment).ok_or_else(|| fail(ReflectError::UnknownClass))?;
        if !self.app.classes.is_fragment_class(fragment) {
            return Err(fail(ReflectError::NotAFragment));
        }
        if def.is_abstract {
            return Err(fail(ReflectError::AbstractClass));
        }
        if !def.has_default_ctor() {
            return Err(fail(ReflectError::MissingCtorParameters));
        }

        let activity = self.stack.last().expect("running").activity.clone();
        // Reflecting getFragmentManager()/getSupportFragmentManager() only
        // works if the activity (or its inner classes) actually obtains one.
        let has_fm = self
            .app
            .classes
            .with_inner_classes(activity.as_str())
            .iter()
            .any(|c| visit::any_stmt(c, |s| matches!(s, Stmt::GetFragmentManager { .. })));
        if !has_fm {
            return Err(fail(ReflectError::NoFragmentManager));
        }

        let container = self
            .infer_container(&activity, fragment)
            .ok_or_else(|| fail(ReflectError::NoContainer))?;

        let before = self.signature();
        let screen_idx = self.stack.len() - 1;
        let frame = Frame::activity(activity, screen_idx, 0);
        match interp::attach_fragment(self, &frame, &container, &fragment_name, true) {
            Ok(()) => Ok(self.classify(before)),
            Err(Interrupt::Crash(reason)) => Ok(self.crash_out(reason)),
            Err(Interrupt::Finish) => Ok(self.classify(before)),
        }
    }

    /// Infers the container resource-ID a fragment should be committed
    /// into: first a transaction in the activity's code that mentions the
    /// fragment, then any transaction container in the activity, then the
    /// first `FragmentContainer` in the current layout.
    fn infer_container(&self, activity: &ClassName, fragment: &str) -> Option<String> {
        let classes = self.app.classes.with_inner_classes(activity.as_str());
        let mut any_container = None;
        let mut matching = None;
        for class in &classes {
            visit::walk_class(class, &mut |s| {
                if let Stmt::TxnAdd { container, fragment: f }
                | Stmt::TxnReplace { container, fragment: f }
                | Stmt::AttachDirect { container, fragment: f } = s
                {
                    if any_container.is_none() {
                        any_container = Some(container.name.clone());
                    }
                    if matching.is_none() && f.as_str() == fragment {
                        matching = Some(container.name.clone());
                    }
                }
            });
        }
        matching.or(any_container).or_else(|| {
            self.current().and_then(|s| {
                s.layout.as_ref().and_then(|l| {
                    l.root
                        .iter()
                        .find(|w| w.kind == WidgetKind::FragmentContainer)
                        .and_then(|w| w.id.clone())
                })
            })
        })
    }
}
