//! Robotium-style test scripts: the executable form of FragDroid's test
//! cases.
//!
//! FragDroid's test-case generation module "transforms the items in the UI
//! queue into executable test cases" — Java programs built on Robotium,
//! packaged with Ant, and run through `am instrument`. Here a test case is
//! a [`TestScript`]: a named sequence of [`Op`]s executed by
//! [`run_script`], which reports the outcome of every step.

use crate::device::Device;
use crate::error::DeviceError;
use crate::outcome::{EventOutcome, UiSignature};
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scripted operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Launch the app from its launcher activity.
    Launch,
    /// `am start -n <component>` — forced start (needs the MAIN-action
    /// manifest rewrite).
    ForceStart(ClassName),
    /// Click the widget with this resource-ID.
    Click(String),
    /// Enter text into an `EditText`.
    EnterText {
        /// Target widget resource-ID.
        id: String,
        /// The text.
        text: String,
    },
    /// Dismiss a dialog/menu by clicking blank space.
    DismissOverlay,
    /// Hardware back.
    Back,
    /// Left-edge swipe to open a navigation drawer.
    SwipeOpenDrawer,
    /// Reflectively switch the current activity to this fragment.
    ReflectSwitch(ClassName),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Launch => write!(f, "launch"),
            Op::ForceStart(c) => write!(f, "am start -n {c}"),
            Op::Click(id) => write!(f, "click @id/{id}"),
            Op::EnterText { id, text } => write!(f, "type @id/{id} {text:?}"),
            Op::DismissOverlay => write!(f, "dismiss-overlay"),
            Op::Back => write!(f, "back"),
            Op::SwipeOpenDrawer => write!(f, "swipe-open-drawer"),
            Op::ReflectSwitch(c) => write!(f, "reflect-switch {c}"),
        }
    }
}

/// A named operation sequence (one FragDroid test case).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestScript {
    /// Human-readable name, e.g. `reach A(com.example.Settings)`.
    pub name: String,
    /// The operations, executed in order.
    pub ops: Vec<Op>,
}

impl TestScript {
    /// Creates a script.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        TestScript { name: name.into(), ops }
    }
}

/// The result of one executed step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepResult {
    /// The operation executed.
    pub op: Op,
    /// Its outcome, or the device error that rejected it.
    pub result: Result<EventOutcome, DeviceError>,
}

/// The result of running a whole script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptReport {
    /// Per-step results, in order. Execution stops at the first crash, so
    /// this may be shorter than the script.
    pub steps: Vec<StepResult>,
    /// The UI signature after the last executed step.
    pub final_signature: Option<UiSignature>,
    /// Whether the run ended in a Force Close.
    pub crashed: bool,
}

impl ScriptReport {
    /// Whether every step executed without device error or crash.
    pub fn is_clean(&self) -> bool {
        !self.crashed && self.steps.iter().all(|s| s.result.is_ok())
    }
}

/// Executes `script` on `device`, stopping early if the app force-closes.
/// `EnterText` steps report [`EventOutcome::NoChange`] on success (typing
/// does not itself change the UI state).
pub fn run_script(device: &mut Device, script: &TestScript) -> ScriptReport {
    let mut steps = Vec::with_capacity(script.ops.len());
    for op in &script.ops {
        let result = match op {
            Op::Launch => device.launch(),
            Op::ForceStart(component) => device.am_start(component.as_str()),
            Op::Click(id) => device.click(id),
            Op::EnterText { id, text } => {
                device.enter_text(id, text).map(|()| EventOutcome::NoChange)
            }
            Op::DismissOverlay => device.dismiss_overlay(),
            Op::Back => device.back(),
            Op::SwipeOpenDrawer => device.swipe_open_drawer(),
            Op::ReflectSwitch(fragment) => device.reflect_switch_fragment(fragment.as_str()),
        };
        let crashed = matches!(result, Ok(EventOutcome::Crashed { .. }));
        steps.push(StepResult { op: op.clone(), result });
        if crashed {
            break;
        }
    }
    ScriptReport { final_signature: device.signature(), crashed: device.is_crashed(), steps }
}
