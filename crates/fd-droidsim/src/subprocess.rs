//! The subprocess device backend: a device agent behind a pipe.
//!
//! [`SubprocessDevice`] implements [`DeviceApi`] by sending each request
//! as one wire-protocol frame to an agent and waiting (with a
//! per-request timeout) for the matching reply. The agent is reached
//! through an [`AgentTransport`]:
//!
//! * [`ChildTransport`] — a real `fd-cli device-agent` child process
//!   over stdin/stdout, giving true crash isolation: agent death, a
//!   wedged pipe, or a malformed reply surface as typed
//!   infrastructure-class [`DeviceError`]s, never as hangs or panics.
//! * [`InMemoryTransport`] — the same serve loop on a thread over
//!   in-memory pipes, for deterministic tests and benches that cannot
//!   spawn the CLI binary.
//!
//! Sessions are re-established at app granularity: a transport failure
//! poisons the session (silently retrying mid-run on a fresh device
//! would corrupt exploration state), and the next
//! [`DeviceApi::install_app`] respawns the agent with bounded backoff.

use crate::backend::{DeviceApi, ScreenObservation};
use crate::device::DeviceConfig;
use crate::error::DeviceError;
use crate::faults::{FaultLog, FaultRecord};
use crate::monitor::ApiInvocation;
use crate::outcome::{EventOutcome, UiSignature};
use crate::proto::{
    decode_payload, encode_frame, to_hex, AgentRequest, AgentResponse, Envelope, FrameBuffer,
};
use crate::screen::VisibleWidget;
use fd_apk::AndroidApp;
use std::io::{Read, Write};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A byte pipe to a device agent. Implementations deliver raw chunks;
/// framing happens on the client side so every transport shares one
/// (fuzz-hardened) decoder.
pub trait AgentTransport: Send {
    /// Writes one encoded frame to the agent.
    fn send(&mut self, frame: &[u8]) -> Result<(), DeviceError>;
    /// Receives the next raw chunk from the agent, waiting at most
    /// `timeout`.
    fn recv_chunk(&mut self, timeout: Duration) -> Result<Vec<u8>, DeviceError>;
}

/// Builds transports on demand — what lets [`SubprocessDevice`] respawn
/// a dead agent.
pub type TransportFactory = Box<dyn FnMut() -> Result<Box<dyn AgentTransport>, DeviceError> + Send>;

fn died(detail: impl Into<String>) -> DeviceError {
    DeviceError::AgentDied { detail: detail.into() }
}

// ---------------------------------------------------------------------
// Child-process transport
// ---------------------------------------------------------------------

/// A transport to a real agent child process. A reader thread drains the
/// child's stdout into a channel so receives can time out — a blocking
/// pipe read cannot.
pub struct ChildTransport {
    child: std::process::Child,
    stdin: std::process::ChildStdin,
    rx: mpsc::Receiver<Result<Vec<u8>, DeviceError>>,
}

impl ChildTransport {
    /// Spawns `program` with `args`, wiring stdin/stdout as the protocol
    /// pipe. The child's stderr is inherited so agent diagnostics land
    /// in the parent's log.
    pub fn spawn(program: &std::path::Path, args: &[String]) -> Result<Self, DeviceError> {
        let mut child = std::process::Command::new(program)
            .args(args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| died(format!("spawn {}: {e}", program.display())))?;
        let stdin = child.stdin.take().ok_or_else(|| died("child stdin unavailable"))?;
        let mut stdout = child.stdout.take().ok_or_else(|| died("child stdout unavailable"))?;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut chunk = [0u8; 64 * 1024];
            loop {
                match stdout.read(&mut chunk) {
                    Ok(0) => {
                        let _ = tx.send(Err(died("agent closed its pipe (exited or was killed)")));
                        return;
                    }
                    Ok(n) => {
                        if tx.send(Ok(chunk[..n].to_vec())).is_err() {
                            return; // client side gone
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let _ = tx.send(Err(died(format!("agent pipe read: {e}"))));
                        return;
                    }
                }
            }
        });
        Ok(ChildTransport { child, stdin, rx })
    }

    /// Spawns the current executable with the `device-agent` subcommand —
    /// the default way a CLI run reaches its agent.
    pub fn spawn_current_exe(extra_args: &[String]) -> Result<Self, DeviceError> {
        let exe = std::env::current_exe().map_err(|e| died(format!("current_exe: {e}")))?;
        let mut args = vec!["device-agent".to_string()];
        args.extend_from_slice(extra_args);
        ChildTransport::spawn(&exe, &args)
    }
}

impl AgentTransport for ChildTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), DeviceError> {
        self.stdin
            .write_all(frame)
            .and_then(|()| self.stdin.flush())
            .map_err(|e| died(format!("agent pipe write: {e}")))
    }

    fn recv_chunk(&mut self, timeout: Duration) -> Result<Vec<u8>, DeviceError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(DeviceError::AgentTimeout { ms: timeout.as_millis() as u64 })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(died("agent reader thread gone")),
        }
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------

/// The read end of an in-memory byte pipe.
struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    leftover: Vec<u8>,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.leftover.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.leftover = chunk,
                Err(_) => return Ok(0), // writer gone: EOF
            }
        }
        let n = self.leftover.len().min(buf.len());
        buf[..n].copy_from_slice(&self.leftover[..n]);
        self.leftover.drain(..n);
        Ok(n)
    }
}

/// The write end of an in-memory byte pipe.
struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "reader gone"))?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The agent serve loop on a thread, behind in-memory pipes — process
/// isolation minus the process, for deterministic tests and benches.
pub struct InMemoryTransport {
    to_agent: mpsc::Sender<Vec<u8>>,
    from_agent: mpsc::Receiver<Vec<u8>>,
}

impl InMemoryTransport {
    /// Starts an agent thread with `options` and returns the client end.
    pub fn start(options: crate::agent::AgentOptions) -> Self {
        let (client_tx, agent_rx) = mpsc::channel::<Vec<u8>>();
        let (agent_tx, client_rx) = mpsc::channel::<Vec<u8>>();
        std::thread::spawn(move || {
            let input = PipeReader { rx: agent_rx, leftover: Vec::new() };
            let output = PipeWriter { tx: agent_tx };
            let _ = crate::agent::serve(input, output, options);
            // serve returning drops `output`; the client sees EOF.
        });
        InMemoryTransport { to_agent: client_tx, from_agent: client_rx }
    }
}

impl AgentTransport for InMemoryTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), DeviceError> {
        self.to_agent.send(frame.to_vec()).map_err(|_| died("agent thread hung up"))
    }

    fn recv_chunk(&mut self, timeout: Duration) -> Result<Vec<u8>, DeviceError> {
        match self.from_agent.recv_timeout(timeout) {
            Ok(chunk) => Ok(chunk),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(DeviceError::AgentTimeout { ms: timeout.as_millis() as u64 })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(died("agent thread hung up")),
        }
    }
}

// ---------------------------------------------------------------------
// The subprocess-backed DeviceApi
// ---------------------------------------------------------------------

/// Default per-request reply timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);
/// Bounded respawn attempts per session establishment.
const RESPAWN_LIMIT: u32 = 3;
/// Base backoff between respawn attempts (doubles per attempt).
const BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Cap on retained per-request round-trip samples (for benches).
const MAX_SAMPLES: usize = 1 << 16;

/// A [`DeviceApi`] whose device lives behind an [`AgentTransport`].
pub struct SubprocessDevice {
    factory: TransportFactory,
    transport: Option<Box<dyn AgentTransport>>,
    frames: FrameBuffer,
    next_id: u64,
    timeout: Duration,
    requests: u64,
    respawns: u32,
    round_trips_us: Vec<u64>,
}

impl SubprocessDevice {
    /// A device over transports built by `factory`. No agent is spawned
    /// until the first [`DeviceApi::install_app`].
    pub fn new(factory: TransportFactory) -> Self {
        SubprocessDevice {
            factory,
            transport: None,
            frames: FrameBuffer::new(),
            next_id: 0,
            timeout: DEFAULT_TIMEOUT,
            requests: 0,
            respawns: 0,
            round_trips_us: Vec::new(),
        }
    }

    /// A device whose agents are `device-agent` children of the current
    /// executable, each spawned with `extra_args`.
    pub fn spawn_cli(extra_args: Vec<String>) -> Self {
        SubprocessDevice::new(Box::new(move || {
            ChildTransport::spawn_current_exe(&extra_args)
                .map(|t| Box::new(t) as Box<dyn AgentTransport>)
        }))
    }

    /// A device over in-memory agent threads with `options` — the
    /// deterministic test/bench configuration.
    pub fn in_memory(options: crate::agent::AgentOptions) -> Self {
        SubprocessDevice::new(Box::new(move || {
            Ok(Box::new(InMemoryTransport::start(options)) as Box<dyn AgentTransport>)
        }))
    }

    /// Overrides the per-request reply timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Requests sent so far (across respawns).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Agent respawns performed after the first spawn.
    pub fn respawns(&self) -> u32 {
        self.respawns
    }

    /// Per-request round-trip times, in microseconds (capped buffer).
    pub fn round_trips_us(&self) -> &[u64] {
        &self.round_trips_us
    }

    /// Whether a live agent session exists.
    pub fn is_live(&self) -> bool {
        self.transport.is_some()
    }

    /// Sends one request and waits for its reply. Any transport or
    /// protocol failure poisons the session: the transport is dropped
    /// (killing a child agent) and the typed error is returned.
    fn request(&mut self, body: AgentRequest) -> Result<AgentResponse, DeviceError> {
        let result = self.request_inner(body);
        if result.is_err() {
            self.transport = None;
            self.frames = FrameBuffer::new();
        }
        result
    }

    fn request_inner(&mut self, body: AgentRequest) -> Result<AgentResponse, DeviceError> {
        let transport = self.transport.as_mut().ok_or_else(|| died("no live agent session"))?;
        let id = self.next_id;
        self.next_id += 1;
        self.requests += 1;
        let started = Instant::now();
        transport.send(&encode_frame(&Envelope { id, body }))?;
        let deadline = started + self.timeout;
        let payload = loop {
            match self.frames.next_frame() {
                Ok(Some(p)) => break p,
                Ok(None) => {}
                Err(e) => return Err(DeviceError::Protocol { detail: e.to_string() }),
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DeviceError::AgentTimeout { ms: self.timeout.as_millis() as u64 });
            }
            let chunk = transport.recv_chunk(deadline - now)?;
            self.frames.push(&chunk);
        };
        let envelope: Envelope<AgentResponse> = decode_payload(&payload)
            .map_err(|e| DeviceError::Protocol { detail: e.to_string() })?;
        if envelope.id != id {
            return Err(DeviceError::Protocol {
                detail: format!("reply id {} does not match request id {id}", envelope.id),
            });
        }
        if self.round_trips_us.len() < MAX_SAMPLES {
            self.round_trips_us.push(started.elapsed().as_micros() as u64);
        }
        Ok(envelope.body)
    }

    fn shape_error(&mut self, what: &str, got: AgentResponse) -> DeviceError {
        self.transport = None;
        self.frames = FrameBuffer::new();
        DeviceError::Protocol { detail: format!("expected {what} reply, got {got:?}") }
    }
}

/// Unwraps one reply variant, poisoning the session on a shape mismatch.
macro_rules! expect_reply {
    ($self:ident, $req:expr, $variant:ident, $what:literal) => {
        match $self.request($req)? {
            AgentResponse::$variant(inner) => inner,
            other => return Err($self.shape_error($what, other)),
        }
    };
}

impl DeviceApi for SubprocessDevice {
    fn install_app(&mut self, app: &AndroidApp, config: DeviceConfig) -> Result<(), DeviceError> {
        let container_hex = to_hex(&fd_apk::pack(app));
        let mut last_err = died("no spawn attempted");
        for attempt in 0..=RESPAWN_LIMIT {
            if attempt > 0 {
                self.respawns += 1;
                let backoff = BACKOFF_BASE * (1u32 << (attempt - 1).min(4));
                std::thread::sleep(backoff);
            }
            if self.transport.is_none() {
                match (self.factory)() {
                    Ok(t) => {
                        self.transport = Some(t);
                        self.frames = FrameBuffer::new();
                    }
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
            }
            let req = AgentRequest::Install {
                container_hex: container_hex.clone(),
                config: config.clone(),
            };
            match self.request(req) {
                Ok(AgentResponse::Installed(Ok(()))) => return Ok(()),
                Ok(AgentResponse::Installed(Err(msg))) => {
                    // The agent is alive but refused the container; a
                    // respawn cannot change that.
                    return Err(DeviceError::Protocol {
                        detail: format!("agent install failed: {msg}"),
                    });
                }
                Ok(other) => return Err(self.shape_error("Installed", other)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn launch(&mut self) -> Result<EventOutcome, DeviceError> {
        expect_reply!(self, AgentRequest::Launch, Outcome, "Outcome")
    }
    fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError> {
        let req = AgentRequest::AmStart { component: component.to_string() };
        expect_reply!(self, req, Outcome, "Outcome")
    }
    fn click(&mut self, id: &str) -> Result<EventOutcome, DeviceError> {
        let req = AgentRequest::Click { id: id.to_string() };
        expect_reply!(self, req, Outcome, "Outcome")
    }
    fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError> {
        let req = AgentRequest::EnterText { id: id.to_string(), text: text.to_string() };
        expect_reply!(self, req, Unit, "Unit")
    }
    fn dismiss_overlay(&mut self) -> Result<EventOutcome, DeviceError> {
        expect_reply!(self, AgentRequest::DismissOverlay, Outcome, "Outcome")
    }
    fn back(&mut self) -> Result<EventOutcome, DeviceError> {
        expect_reply!(self, AgentRequest::Back, Outcome, "Outcome")
    }
    fn swipe_open_drawer(&mut self) -> Result<EventOutcome, DeviceError> {
        expect_reply!(self, AgentRequest::SwipeOpenDrawer, Outcome, "Outcome")
    }
    fn reflect_switch_fragment(&mut self, fragment: &str) -> Result<EventOutcome, DeviceError> {
        let req = AgentRequest::ReflectSwitchFragment { fragment: fragment.to_string() };
        expect_reply!(self, req, Outcome, "Outcome")
    }

    fn observe(&mut self) -> Result<Option<ScreenObservation>, DeviceError> {
        expect_reply!(self, AgentRequest::Observe, Observation, "Observation")
    }
    fn signature(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        expect_reply!(self, AgentRequest::Signature, Signature, "Signature")
    }
    fn visible_widgets(&mut self) -> Result<Vec<VisibleWidget>, DeviceError> {
        expect_reply!(self, AgentRequest::VisibleWidgets, Widgets, "Widgets")
    }
    fn stack_depth(&mut self) -> Result<usize, DeviceError> {
        expect_reply!(self, AgentRequest::StackDepth, Count, "Count")
    }
    fn is_crashed(&mut self) -> Result<bool, DeviceError> {
        expect_reply!(self, AgentRequest::IsCrashed, Flag, "Flag")
    }
    fn crash_site(&mut self) -> Result<Option<UiSignature>, DeviceError> {
        expect_reply!(self, AgentRequest::CrashSite, Signature, "Signature")
    }
    fn invocations(&mut self) -> Result<Vec<ApiInvocation>, DeviceError> {
        expect_reply!(self, AgentRequest::Invocations, Invocations, "Invocations")
    }
    fn fault_records_since(&mut self, from: usize) -> Result<Vec<FaultRecord>, DeviceError> {
        let req = AgentRequest::FaultRecordsSince { from };
        expect_reply!(self, req, FaultRecords, "FaultRecords")
    }
    fn fault_log(&mut self) -> Result<FaultLog, DeviceError> {
        expect_reply!(self, AgentRequest::FaultLog, FaultLog, "FaultLog")
    }
    fn faults_injected(&mut self) -> Result<usize, DeviceError> {
        expect_reply!(self, AgentRequest::FaultsInjected, Count, "Count")
    }
    fn clock(&mut self) -> Result<u64, DeviceError> {
        expect_reply!(self, AgentRequest::Clock, Clock, "Clock")
    }
    fn advance_clock(&mut self, ticks: u64) -> Result<(), DeviceError> {
        expect_reply!(self, AgentRequest::AdvanceClock { ticks }, Unit, "Unit")
    }
    fn reset(&mut self) -> Result<(), DeviceError> {
        expect_reply!(self, AgentRequest::Reset, Unit, "Unit")
    }
    fn grant(&mut self, permission: &str) -> Result<(), DeviceError> {
        let req = AgentRequest::Grant { permission: permission.to_string() };
        expect_reply!(self, req, Unit, "Unit")
    }
    fn revoke(&mut self, permission: &str) -> Result<(), DeviceError> {
        let req = AgentRequest::Revoke { permission: permission.to_string() };
        expect_reply!(self, req, Unit, "Unit")
    }

    fn ping(&mut self) -> Result<(), DeviceError> {
        match self.request(AgentRequest::Ping)? {
            AgentResponse::Pong => Ok(()),
            other => Err(self.shape_error("Pong", other)),
        }
    }
    fn backend_name(&self) -> &'static str {
        "subprocess"
    }
}

impl Drop for SubprocessDevice {
    fn drop(&mut self) {
        if self.transport.is_some() {
            // Best-effort orderly shutdown; a dead agent is dropped by
            // the transport's own Drop.
            let _ = self.request(AgentRequest::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentOptions;

    fn test_app() -> AndroidApp {
        let gen = fd_appgen::templates::quickstart();
        let mut app = gen.app.clone();
        app.manifest.add_main_action_everywhere();
        app
    }

    #[test]
    fn in_memory_session_runs_the_basic_flow() {
        let mut dev = SubprocessDevice::in_memory(AgentOptions::default());
        dev.install_app(&test_app(), DeviceConfig::default()).expect("installs");
        assert!(dev.ping().is_ok());
        let outcome = dev.launch().expect("launches");
        assert!(matches!(outcome, EventOutcome::UiChanged { .. }));
        assert!(dev.signature().expect("signature").is_some());
        assert!(dev.clock().expect("clock") > 0);
        assert!(dev.requests() >= 4);
        assert_eq!(dev.round_trips_us().len() as u64, dev.requests());
    }

    #[test]
    fn agent_death_is_a_typed_error_not_a_hang() {
        // Agent dies at request index 2 (install=0, launch=1, clock=2).
        let mut dev = SubprocessDevice::in_memory(AgentOptions { die_after: Some(2) })
            .with_timeout(Duration::from_secs(5));
        dev.install_app(&test_app(), DeviceConfig::default()).expect("installs");
        dev.launch().expect("launches");
        let err = dev.clock().expect_err("agent died");
        assert_eq!(err.class(), crate::ErrorClass::Infrastructure);
        assert!(!dev.is_live(), "session is poisoned after a transport failure");
        // Every further request fails fast with a typed error.
        let err = dev.launch().expect_err("no session");
        assert_eq!(err.class(), crate::ErrorClass::Infrastructure);
    }

    #[test]
    fn install_respawns_a_dead_session_with_backoff() {
        let mut dev = SubprocessDevice::in_memory(AgentOptions { die_after: Some(2) })
            .with_timeout(Duration::from_secs(5));
        dev.install_app(&test_app(), DeviceConfig::default()).expect("installs");
        dev.launch().expect("launches");
        assert!(dev.clock().is_err(), "first agent dies");
        // Session re-establishment: a fresh install respawns the agent
        // (which will again die after 2 requests — but install and
        // launch fit).
        dev.install_app(&test_app(), DeviceConfig::default()).expect("re-installs");
        assert!(dev.is_live());
        dev.launch().expect("launches on the fresh agent");
    }

    #[test]
    fn spawn_failures_are_bounded_and_reported() {
        let mut dev = SubprocessDevice::new(Box::new(|| Err(died("refusing to spawn"))));
        let err = dev.install_app(&test_app(), DeviceConfig::default()).expect_err("no spawn");
        assert_eq!(err.class(), crate::ErrorClass::Infrastructure);
        assert_eq!(dev.respawns(), RESPAWN_LIMIT);
    }

    #[test]
    fn timeout_is_typed() {
        // An agent that never answers: transport whose recv always
        // blocks until timeout.
        struct Mute;
        impl AgentTransport for Mute {
            fn send(&mut self, _: &[u8]) -> Result<(), DeviceError> {
                Ok(())
            }
            fn recv_chunk(&mut self, timeout: Duration) -> Result<Vec<u8>, DeviceError> {
                std::thread::sleep(timeout);
                Err(DeviceError::AgentTimeout { ms: timeout.as_millis() as u64 })
            }
        }
        let mut dev = SubprocessDevice::new(Box::new(|| Ok(Box::new(Mute))))
            .with_timeout(Duration::from_millis(30));
        let err = dev.install_app(&test_app(), DeviceConfig::default()).expect_err("times out");
        assert_eq!(err.class(), crate::ErrorClass::Infrastructure);
    }
}
