//! Runtime intents and their resolution against the manifest.

use fd_apk::Manifest;
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A runtime `Intent`: an explicit class target and/or an implicit action,
/// plus string extras.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Intent {
    /// Explicit component target (`new Intent(ctx, X.class)` / `setClass`).
    pub target: Option<ClassName>,
    /// Implicit action (`new Intent(action)` / `setAction`).
    pub action: Option<String>,
    /// String extras.
    pub extras: BTreeMap<String, String>,
}

impl Intent {
    /// An empty intent — what FragDroid uses to forcibly invoke remaining
    /// activities in its second loop phase.
    pub fn empty() -> Self {
        Intent::default()
    }

    /// An explicit intent for a component.
    pub fn explicit(target: impl Into<ClassName>) -> Self {
        Intent { target: Some(target.into()), ..Intent::default() }
    }

    /// An implicit intent for an action.
    pub fn implicit(action: impl Into<String>) -> Self {
        Intent { action: Some(action.into()), ..Intent::default() }
    }

    /// Adds an extra (builder style).
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extras.insert(key.into(), value.into());
        self
    }

    /// Whether the intent carries the given extra.
    pub fn has_extra(&self, key: &str) -> bool {
        self.extras.contains_key(key)
    }

    /// Resolves the intent to an activity class: the explicit target wins;
    /// otherwise the manifest's intent filters are consulted.
    pub fn resolve(&self, manifest: &Manifest) -> Option<ClassName> {
        if let Some(target) = &self.target {
            // Explicit intents resolve iff the component is declared.
            return manifest.declares(target.as_str()).then(|| target.clone());
        }
        let action = self.action.as_deref()?;
        manifest.resolve_action(action).map(|decl| decl.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_apk::{ActivityDecl, IntentFilter};

    fn manifest() -> Manifest {
        Manifest::new("a").with_activity(ActivityDecl::new("a.Main").launcher()).with_activity(
            ActivityDecl::new("a.Viewer").with_filter(IntentFilter::for_action("a.VIEW")),
        )
    }

    #[test]
    fn explicit_resolution_requires_declaration() {
        let m = manifest();
        assert_eq!(Intent::explicit("a.Viewer").resolve(&m), Some("a.Viewer".into()));
        assert_eq!(Intent::explicit("a.Ghost").resolve(&m), None);
    }

    #[test]
    fn implicit_resolution_via_action() {
        let m = manifest();
        assert_eq!(Intent::implicit("a.VIEW").resolve(&m), Some("a.Viewer".into()));
        assert_eq!(Intent::implicit("a.NOPE").resolve(&m), None);
    }

    #[test]
    fn explicit_target_wins_over_action() {
        let m = manifest();
        let mut i = Intent::explicit("a.Main");
        i.action = Some("a.VIEW".into());
        assert_eq!(i.resolve(&m), Some("a.Main".into()));
    }

    #[test]
    fn empty_intent_resolves_nowhere() {
        assert_eq!(Intent::empty().resolve(&manifest()), None);
    }

    #[test]
    fn extras() {
        let i = Intent::explicit("a.Main").with_extra("k", "v");
        assert!(i.has_extra("k"));
        assert!(!i.has_extra("z"));
    }
}
