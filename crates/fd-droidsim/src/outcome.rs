//! UI state signatures and event outcomes.

use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A fragment-level UI state identity: the activity, the fragments
/// attached per container, the overlay, and drawer state.
///
/// Two screens with the same signature are "the same interface" to
/// FragDroid. Activity-level tools compare only [`UiSignature::activity`],
/// which is exactly the blindness the paper's Challenge 1 describes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UiSignature {
    /// The foreground activity.
    pub activity: ClassName,
    /// `(container id, fragment class)` pairs currently attached.
    pub fragments: BTreeMap<String, ClassName>,
    /// A tag for the modal overlay, if any.
    pub overlay: Option<String>,
    /// Open drawer ids.
    pub open_drawers: BTreeSet<String>,
}

impl UiSignature {
    /// The activity-level projection of this state — what a traditional
    /// tool sees.
    pub fn activity_only(&self) -> &ClassName {
        &self.activity
    }

    /// Whether two signatures differ *only* at the fragment level (same
    /// activity, different fragments/overlay/drawers). These are the
    /// states activity-level tools conflate.
    pub fn fragment_level_change(&self, other: &UiSignature) -> bool {
        self.activity == other.activity && self != other
    }
}

impl fmt::Display for UiSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.activity)?;
        for (container, fragment) in &self.fragments {
            write!(f, " [{container}:{fragment}]")?;
        }
        if let Some(overlay) = &self.overlay {
            write!(f, " +{overlay}")?;
        }
        for drawer in &self.open_drawers {
            write!(f, " |{drawer}")?;
        }
        Ok(())
    }
}

/// What a single injected event did to the UI — the classification behind
/// the paper's Case-3 handling ("if the interface doesn't change … if a
/// dialog box or a menu pops up … if the interface changes … if the app
/// crashes").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventOutcome {
    /// The interface did not change.
    NoChange,
    /// A dialog box or menu popped up (dismissable by clicking blank
    /// space).
    OverlayShown,
    /// The interface changed to a new state (activity switch, fragment
    /// transformation, drawer toggle).
    UiChanged {
        /// The state before the event.
        from: UiSignature,
        /// The state after.
        to: UiSignature,
    },
    /// The foreground activity finished; the previous screen (if any) is
    /// showing.
    Finished,
    /// The app force-closed.
    Crashed {
        /// The exception message.
        reason: String,
    },
}

impl EventOutcome {
    /// Whether the event produced a new, usable UI state.
    pub fn changed_ui(&self) -> bool {
        matches!(self, EventOutcome::UiChanged { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(activity: &str, frag: Option<(&str, &str)>) -> UiSignature {
        UiSignature {
            activity: activity.into(),
            fragments: frag.into_iter().map(|(c, f)| (c.to_string(), ClassName::from(f))).collect(),
            overlay: None,
            open_drawers: BTreeSet::new(),
        }
    }

    #[test]
    fn fragment_level_change_detection() {
        let a = sig("app.Main", Some(("content", "app.F0")));
        let b = sig("app.Main", Some(("content", "app.F1")));
        let c = sig("app.Other", Some(("content", "app.F0")));
        assert!(a.fragment_level_change(&b));
        assert!(!a.fragment_level_change(&a), "identical is not a change");
        assert!(!a.fragment_level_change(&c), "activity change is not fragment-level");
    }

    #[test]
    fn display_contains_components() {
        let mut s = sig("app.Main", Some(("content", "app.F0")));
        s.overlay = Some("dialog:x".into());
        s.open_drawers.insert("drawer".into());
        let text = s.to_string();
        for needle in ["app.Main", "content:app.F0", "+dialog:x", "|drawer"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn changed_ui_predicate() {
        let a = sig("app.Main", None);
        let b = sig("app.Main", Some(("c", "app.F")));
        assert!(EventOutcome::UiChanged { from: a, to: b }.changed_ui());
        assert!(!EventOutcome::NoChange.changed_ui());
        assert!(!EventOutcome::Crashed { reason: "x".into() }.changed_ui());
    }
}
