//! The sensitive-API monitor — the reproduction's XPrivacy hook layer.
//!
//! The paper selects "some common sensitive operation functions defined by
//! XPrivacy" (46 of them appear in Table II) and records which Activity
//! and/or Fragment invokes each. [`ApiMonitor`] is the runtime hook: the
//! interpreter reports every `invoke-api` statement it executes together
//! with the UI element (activity or fragment) whose code is running.

use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The 46 sensitive APIs of Table II as `(group, name)` pairs, in the
/// table's order. (The printed table shows `system/queryIntentActivities`
/// twice; following XPrivacy's function list the second entry is taken to
/// be `queryIntentServices`, which keeps the count at 46 distinct APIs.)
pub const SENSITIVE_APIS: &[(&str, &str)] = &[
    ("browser", "Downloads"),
    ("identification", "/proc"),
    ("identification", "getString"),
    ("identification", "SERIAL"),
    ("internet", "connect"),
    ("internet", "Connectivity.getActiveNetworkInfo"),
    ("internet", "Connectivity.getNetworkInfo"),
    ("internet", "inet"),
    ("internet", "InetAddress.getAllByName"),
    ("internet", "InetAddress.getByAddress"),
    ("internet", "InetAddress.getByName"),
    ("internet", "IpPrefix.getAddress"),
    ("internet", "LinkProperties.getLinkAddresses"),
    ("internet", "NetworkInfo.getDetailedState"),
    ("internet", "NetworkInfo.isConnected"),
    ("internet", "NetworkInfo.isConnectedOrConnecting"),
    ("internet", "NetworkInterface.getNetworkInterfaces"),
    ("internet", "WiFi.getConnectionInfo"),
    ("ipc", "Binder"),
    ("location", "getAllProviders"),
    ("location", "getProviders"),
    ("location", "isProviderEnabled"),
    ("location", "requestLocationUpdates"),
    ("media", "Camera.setPreviewTexture"),
    ("media", "Camera.startPreview"),
    ("messages", "MmsProvider"),
    ("network", "NetworkInterface.getInetAddresses"),
    ("network", "WiFi.getConfiguredNetworks"),
    ("network", "WiFi.getConnectionInfo"),
    ("phone", "Configuration.MCC"),
    ("phone", "Configuration.MNC"),
    ("phone", "getDeviceId"),
    ("phone", "getNetworkCountryIso"),
    ("phone", "getNetworkOperatorName"),
    ("shell", "loadLibrary"),
    ("storage", "getExternalStorageState"),
    ("storage", "open"),
    ("storage", "sdcard"),
    ("system", "getInstalledApplications"),
    ("system", "getRunningAppProcesses"),
    ("system", "queryIntentActivities"),
    ("system", "queryIntentServices"),
    ("view", "getUserAgentString"),
    ("view", "initUserAgentString"),
    ("view", "loadUrl"),
    ("view", "setUserAgentString"),
];

/// Returns whether `(group, name)` is in the monitored catalog.
pub fn is_sensitive(group: &str, name: &str) -> bool {
    SENSITIVE_APIS.iter().any(|&(g, n)| g == group && n == name)
}

/// The UI element whose code performed a call.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Caller {
    /// Code of an activity (or a helper invoked from it).
    Activity(ClassName),
    /// Code of a fragment.
    Fragment {
        /// The fragment class.
        fragment: ClassName,
        /// Its host activity at call time.
        host: ClassName,
    },
}

impl Caller {
    /// Whether the caller is a fragment.
    pub fn is_fragment(&self) -> bool {
        matches!(self, Caller::Fragment { .. })
    }
}

/// One recorded sensitive-API invocation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApiInvocation {
    /// XPrivacy group.
    pub group: String,
    /// Function name within the group.
    pub name: String,
    /// Who called it.
    pub caller: Caller,
}

/// The recording hook. Invocations outside the catalog are ignored. The
/// *relation* view ([`ApiMonitor::invocations`]) collapses duplicates
/// (same API, same caller) — Table II reports the relation, not a call
/// count — while the *sequence* view ([`ApiMonitor::sequence`]) keeps
/// every call in order, which lifecycle tests and traces rely on.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ApiMonitor {
    seen: BTreeSet<ApiInvocation>,
    sequence: Vec<ApiInvocation>,
}

impl ApiMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a call if it is in the catalog; returns `true` if this
    /// (API, caller) pair is new.
    pub fn record(&mut self, group: &str, name: &str, caller: Caller) -> bool {
        if !is_sensitive(group, name) {
            return false;
        }
        let invocation = ApiInvocation { group: group.to_string(), name: name.to_string(), caller };
        self.sequence.push(invocation.clone());
        self.seen.insert(invocation)
    }

    /// Every recorded call, in execution order, with duplicates.
    pub fn sequence(&self) -> &[ApiInvocation] {
        &self.sequence
    }

    /// All distinct recorded invocations, in order.
    pub fn invocations(&self) -> impl Iterator<Item = &ApiInvocation> {
        self.seen.iter()
    }

    /// Number of distinct (API, caller) pairs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.sequence.clear();
    }

    /// The distinct APIs seen, regardless of caller.
    pub fn distinct_apis(&self) -> BTreeSet<(&str, &str)> {
        self.seen.iter().map(|i| (i.group.as_str(), i.name.as_str())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_46_distinct_apis() {
        let set: BTreeSet<_> = SENSITIVE_APIS.iter().collect();
        assert_eq!(SENSITIVE_APIS.len(), 46);
        assert_eq!(set.len(), 46, "catalog contains duplicates");
    }

    #[test]
    fn catalog_covers_the_13_table_groups() {
        let groups: BTreeSet<&str> = SENSITIVE_APIS.iter().map(|&(g, _)| g).collect();
        let expected: BTreeSet<&str> = [
            "browser",
            "identification",
            "internet",
            "ipc",
            "location",
            "media",
            "messages",
            "network",
            "phone",
            "shell",
            "storage",
            "system",
            "view",
        ]
        .into_iter()
        .collect();
        assert_eq!(groups, expected);
    }

    #[test]
    fn record_filters_unknown_apis() {
        let mut m = ApiMonitor::new();
        assert!(!m.record("bogus", "thing", Caller::Activity("a.A".into())));
        assert!(m.is_empty());
    }

    #[test]
    fn record_dedups_same_api_same_caller() {
        let mut m = ApiMonitor::new();
        let caller = Caller::Activity("a.A".into());
        assert!(m.record("location", "getAllProviders", caller.clone()));
        assert!(!m.record("location", "getAllProviders", caller));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn same_api_different_caller_kinds_are_distinct() {
        let mut m = ApiMonitor::new();
        m.record("location", "getAllProviders", Caller::Activity("a.A".into()));
        m.record(
            "location",
            "getAllProviders",
            Caller::Fragment { fragment: "a.F".into(), host: "a.A".into() },
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.distinct_apis().len(), 1);
    }
}
