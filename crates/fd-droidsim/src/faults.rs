//! Seeded, deterministic fault injection.
//!
//! The paper's dynamic phase ran on real phones, where Force-Closes,
//! ANRs, flaky event delivery, and permission failures are routine. The
//! simulator is faithful to the *app* model but, by default, far too
//! polite about the *device*: nothing ever goes wrong unless the app
//! logic says so. This module adds the unreliable-device dimension back
//! in — without giving up determinism.
//!
//! A [`FaultPlan`] is seeded once ([`FaultConfig::seed`]) and consulted
//! before every injected event. With probability [`FaultConfig::rate`]
//! it injects one [`FaultKind`]:
//!
//! * [`FaultKind::DropEvent`] — the event is silently swallowed (flaky
//!   dispatch); the device reports [`crate::EventOutcome::NoChange`].
//! * [`FaultKind::AnrDelay`] — delivery is delayed past the ANR
//!   threshold in simulated clock ticks; the event fails with
//!   [`crate::DeviceError::Anr`].
//! * [`FaultKind::TransientStartFailure`] — `am start`/launch fails
//!   transiently ([`crate::DeviceError::TransientStart`]); a retry may
//!   succeed.
//! * [`FaultKind::ProcessKill`] — the app process is killed: a spurious
//!   Force-Close with a synthetic stack reason ([`KILL_REASON`]).
//! * [`FaultKind::RevokePermission`] — a granted runtime permission is
//!   revoked mid-run; the event itself proceeds, but later permission
//!   checks may now throw.
//!
//! Every injection is recorded in a [`FaultLog`], so a run is fully
//! replayable from `(seed, rate)`: the same seed over the same event
//! sequence reproduces the same faults, bit for bit. A zero-rate plan
//! never touches the RNG and is therefore indistinguishable from no
//! plan at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Simulated clock ticks (~ms) after which a delayed event counts as an
/// Application Not Responding timeout — Android's 5-second input limit.
pub const ANR_THRESHOLD_TICKS: u64 = 5_000;

/// The synthetic stack reason a [`FaultKind::ProcessKill`] crash carries.
pub const KILL_REASON: &str = "Process died: signal 9 (SIGKILL), injected by fault plan";

/// Static configuration of the fault injector: everything needed to
/// replay a faulted run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// RNG seed; the same seed reproduces the same fault sequence.
    pub seed: u64,
    /// Per-event fault probability in `[0, 1]`. `0.0` disables the
    /// injector entirely (the RNG is never advanced).
    pub rate: f64,
}

impl FaultConfig {
    /// A plan configuration with the given seed and rate.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultConfig { seed, rate }
    }

    /// Whether this configuration can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }
}

/// Where in the device API an event is being injected. The site decides
/// which fault kinds are eligible (a transient `am start` failure makes
/// no sense for a click; killing the process mid-typing is modeled as a
/// drop instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// [`crate::Device::launch`].
    Launch,
    /// [`crate::Device::am_start`].
    ForceStart,
    /// [`crate::Device::click`].
    Click,
    /// [`crate::Device::enter_text`].
    EnterText,
    /// [`crate::Device::dismiss_overlay`].
    DismissOverlay,
    /// [`crate::Device::back`].
    Back,
    /// [`crate::Device::swipe_open_drawer`].
    Swipe,
    /// [`crate::Device::reflect_switch_fragment`].
    Reflect,
}

impl FaultSite {
    /// Whether the site is an app (re)start, where transient `am start`
    /// failures apply.
    fn is_start(self) -> bool {
        matches!(self, FaultSite::Launch | FaultSite::ForceStart)
    }

    /// Whether a process kill is modeled at this site. Text entry cannot
    /// Force-Close (its API has no crash outcome), so kills degrade to
    /// drops there.
    fn can_kill(self) -> bool {
        !matches!(self, FaultSite::EnterText)
    }
}

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The event was silently swallowed (flaky dispatch).
    DropEvent,
    /// Delivery was delayed `ticks` of simulated time — past
    /// [`ANR_THRESHOLD_TICKS`], so the event failed as an ANR.
    AnrDelay {
        /// How long the event was delayed, in simulated ticks.
        ticks: u64,
    },
    /// `am start`/launch failed transiently.
    TransientStartFailure,
    /// The app process was killed (spurious Force-Close with
    /// [`KILL_REASON`]).
    ProcessKill,
    /// A granted permission was revoked mid-run.
    RevokePermission {
        /// The revoked permission.
        permission: String,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DropEvent => write!(f, "drop-event"),
            FaultKind::AnrDelay { ticks } => write!(f, "anr-delay {ticks}t"),
            FaultKind::TransientStartFailure => write!(f, "transient-start-failure"),
            FaultKind::ProcessKill => write!(f, "process-kill"),
            FaultKind::RevokePermission { permission } => write!(f, "revoke {permission}"),
        }
    }
}

/// One [`FaultLog`] entry: which event was faulted, where, and how.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The 1-based sequence number of the injected event the fault hit.
    pub event_seq: u64,
    /// The device API the event went through.
    pub site: FaultSite,
    /// What was injected.
    pub kind: FaultKind,
}

/// The replayable record of every fault injected in a run. Two runs with
/// the same [`FaultConfig`] over the same event sequence produce equal
/// logs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// The seed the plan ran with (0 for an inert plan).
    pub seed: u64,
    /// The per-event fault rate (0.0 for an inert plan).
    pub rate: f64,
    /// Injected faults, in event order.
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Serializes the log to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault log always serializes")
    }

    /// Parses a log back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Whether any fault of this kind predicate was injected.
    pub fn any(&self, mut pred: impl FnMut(&FaultKind) -> bool) -> bool {
        self.records.iter().any(|r| pred(&r.kind))
    }
}

/// The live injector: configuration, RNG state, and the log of what it
/// has done so far.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: StdRng,
    log: FaultLog,
}

impl FaultPlan {
    /// A plan from its configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            log: FaultLog { seed: config.seed, rate: config.rate, records: Vec::new() },
        }
    }

    /// A plan that never injects anything (and never advances its RNG).
    pub fn inert() -> Self {
        FaultPlan::new(FaultConfig::new(0, 0.0))
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// The log of every fault injected so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.log.records.len()
    }

    /// Rolls the dice for the event numbered `event_seq` going through
    /// `site`. `granted` is the set of currently granted permissions
    /// (revocation candidates). Returns the injected fault, if any,
    /// after recording it in the log.
    ///
    /// An inert plan returns `None` without touching the RNG, so a
    /// zero-rate device is bit-for-bit identical to an unfaulted one.
    pub fn roll(
        &mut self,
        event_seq: u64,
        site: FaultSite,
        granted: &BTreeSet<String>,
    ) -> Option<FaultKind> {
        if !self.config.is_active() {
            return None;
        }
        if !self.rng.gen_bool(self.config.rate) {
            return None;
        }
        // Uniform selector over the five kinds; slots a site is not
        // eligible for degrade to a drop so the RNG stream stays aligned
        // across sites.
        let choice = self.rng.gen_range(0u32..5);
        let kind = match choice {
            0 => FaultKind::DropEvent,
            1 => {
                let extra = self.rng.gen_range(1u64..=1_000);
                FaultKind::AnrDelay { ticks: ANR_THRESHOLD_TICKS + extra }
            }
            2 if site.is_start() => FaultKind::TransientStartFailure,
            2 => FaultKind::DropEvent, // non-start sites cannot fail `am`
            3 if site.can_kill() => FaultKind::ProcessKill,
            3 => FaultKind::DropEvent,
            _ => {
                if granted.is_empty() {
                    FaultKind::DropEvent // nothing left to revoke
                } else {
                    let idx = self.rng.gen_range(0usize..granted.len());
                    let permission = granted.iter().nth(idx).expect("index below len").clone();
                    FaultKind::RevokePermission { permission }
                }
            }
        };
        self.log.records.push(FaultRecord { event_seq, site, kind: kind.clone() });
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granted() -> BTreeSet<String> {
        ["android.permission.CAMERA", "android.permission.READ_CONTACTS"]
            .into_iter()
            .map(String::from)
            .collect()
    }

    #[test]
    fn inert_plan_never_injects() {
        let mut plan = FaultPlan::inert();
        for seq in 0..1_000 {
            assert!(plan.roll(seq, FaultSite::Click, &granted()).is_none());
        }
        assert!(!plan.is_active());
        assert!(plan.log().records.is_empty());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let config = FaultConfig::new(7, 0.25);
        let mut a = FaultPlan::new(config);
        let mut b = FaultPlan::new(config);
        let sites = [FaultSite::Launch, FaultSite::Click, FaultSite::EnterText, FaultSite::Back];
        for seq in 0..2_000u64 {
            let site = sites[(seq % 4) as usize];
            assert_eq!(a.roll(seq, site, &granted()), b.roll(seq, site, &granted()));
        }
        assert_eq!(a.log(), b.log());
        assert!(a.injected() > 0, "a 25% plan injects something in 2000 events");
    }

    #[test]
    fn rate_one_always_injects_and_respects_site_eligibility() {
        let mut plan = FaultPlan::new(FaultConfig::new(3, 1.0));
        for seq in 0..500u64 {
            let kind = plan.roll(seq, FaultSite::EnterText, &granted()).expect("rate 1.0");
            assert!(
                !matches!(kind, FaultKind::ProcessKill | FaultKind::TransientStartFailure),
                "text entry can neither kill nor fail `am`, got {kind}"
            );
            if let FaultKind::AnrDelay { ticks } = kind {
                assert!(ticks > ANR_THRESHOLD_TICKS);
            }
        }
        let mut plan = FaultPlan::new(FaultConfig::new(3, 1.0));
        let mut saw_kill = false;
        let mut saw_transient = false;
        for seq in 0..500u64 {
            match plan.roll(seq, FaultSite::Launch, &granted()) {
                Some(FaultKind::ProcessKill) => saw_kill = true,
                Some(FaultKind::TransientStartFailure) => saw_transient = true,
                _ => {}
            }
        }
        assert!(saw_kill && saw_transient, "launch site exposes kill and transient faults");
    }

    #[test]
    fn empty_permission_set_degrades_revocation_to_drop() {
        let mut plan = FaultPlan::new(FaultConfig::new(9, 1.0));
        for seq in 0..500u64 {
            if let Some(kind) = plan.roll(seq, FaultSite::Click, &BTreeSet::new()) {
                assert!(!matches!(kind, FaultKind::RevokePermission { .. }));
            }
        }
    }

    #[test]
    fn log_roundtrips_through_json() {
        let mut plan = FaultPlan::new(FaultConfig::new(5, 0.5));
        for seq in 0..200u64 {
            plan.roll(seq, FaultSite::Click, &granted());
        }
        let log = plan.log();
        let parsed = FaultLog::from_json(&log.to_json()).expect("parses");
        assert_eq!(&parsed, log);
        assert!(log.any(|k| matches!(k, FaultKind::DropEvent)));
    }
}
