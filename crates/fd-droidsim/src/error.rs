//! Device-level errors.

use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An error produced by a device backend — either the simulated device
/// itself, or (for the subprocess backend) the machinery that talks to
/// it. Serializable so a device agent can return it over the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceError {
    /// No app is installed.
    NoApp,
    /// The intent did not resolve to any activity.
    Unresolved(String),
    /// `am start -n` was used on an activity whose manifest entry has no
    /// MAIN action (FragDroid's manifest rewrite has not been applied, or
    /// the component does not exist).
    NotForceStartable(ClassName),
    /// The app force-closed. The device stays in the crashed state until
    /// [`crate::Device::reset`] (or a fresh launch).
    Crashed {
        /// The exception message.
        reason: String,
    },
    /// Event delivery was delayed past the ANR threshold (an injected
    /// [`crate::faults::FaultKind::AnrDelay`]); the event never reached
    /// the app. Transient: a retry may go through.
    Anr {
        /// How long the event was delayed, in simulated clock ticks.
        ticks: u64,
    },
    /// `am start`/launch failed transiently (an injected
    /// [`crate::faults::FaultKind::TransientStartFailure`]). Transient:
    /// a retry may go through.
    TransientStart,
    /// An event targeted a widget that is not on screen (or not visible).
    NoSuchWidget(String),
    /// An event targeted a widget that exists but is not clickable.
    NotClickable(String),
    /// Text was entered into a widget that accepts no input.
    NotEditable(String),
    /// The device is in a crashed state and cannot accept events.
    NotRunning,
    /// Reflection could not switch to the fragment. The payload explains
    /// why (no `FragmentManager` in the activity, constructor needs
    /// parameters, unknown class, …).
    ReflectionFailed {
        /// The fragment that was targeted.
        fragment: ClassName,
        /// Why the switch failed.
        why: ReflectError,
    },
    /// The activity back stack overflowed (a start-activity cycle in the
    /// app's `onCreate` chain).
    StackOverflow,
    /// The device agent process died (exited, was killed, or closed its
    /// pipe) before or while answering a request. Infrastructure: the
    /// app is not to blame and the run should move to a fresh device.
    AgentDied {
        /// What the transport observed (exit status, pipe error, …).
        detail: String,
    },
    /// The device agent did not answer a request within the per-request
    /// timeout — a wedged pipe or a hung agent. Infrastructure.
    AgentTimeout {
        /// The timeout that elapsed, in milliseconds.
        ms: u64,
    },
    /// The agent answered with bytes that do not decode as a protocol
    /// frame, or with a reply of the wrong shape or id. Infrastructure.
    Protocol {
        /// What failed to decode or match.
        detail: String,
    },
}

/// Coarse classification of a [`DeviceError`] — what a recovery
/// supervisor keys its policy on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorClass {
    /// The device hiccuped but the app is fine; a bounded retry with
    /// backoff is worthwhile ([`DeviceError::Anr`],
    /// [`DeviceError::TransientStart`]).
    Transient,
    /// The event targeted a widget that is not there (anymore): the UI
    /// diverged from the script's expectation. Retrying the same event
    /// cannot help; the test case should move on
    /// ([`DeviceError::NoSuchWidget`], [`DeviceError::NotClickable`],
    /// [`DeviceError::NotEditable`]).
    WidgetGone,
    /// Everything else: the app is crashed, not running, or the request
    /// itself is unsatisfiable. Retrying verbatim is pointless.
    Fatal,
    /// The device *backend* failed, not the app: the agent process died,
    /// timed out, or spoke garbage ([`DeviceError::AgentDied`],
    /// [`DeviceError::AgentTimeout`], [`DeviceError::Protocol`]). The run
    /// must be abandoned and the app retried on a fresh device lease —
    /// and the failure must never be attributed to the app as a crash.
    Infrastructure,
}

impl DeviceError {
    /// Classifies this error for retry/recovery decisions.
    pub fn class(&self) -> ErrorClass {
        match self {
            DeviceError::Anr { .. } | DeviceError::TransientStart => ErrorClass::Transient,
            DeviceError::NoSuchWidget(_)
            | DeviceError::NotClickable(_)
            | DeviceError::NotEditable(_) => ErrorClass::WidgetGone,
            DeviceError::AgentDied { .. }
            | DeviceError::AgentTimeout { .. }
            | DeviceError::Protocol { .. } => ErrorClass::Infrastructure,
            _ => ErrorClass::Fatal,
        }
    }
}

/// Why a reflective fragment switch failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReflectError {
    /// The host activity never obtains a `FragmentManager`, so there is
    /// nothing to reflect on — the *dubsmash* case: "several Fragments
    /// [are] instantiated or loaded directly without using
    /// FragmentManager. In this scenario, FragDroid cannot determine
    /// whether the Fragment is a real loading."
    NoFragmentManager,
    /// The fragment's only constructors take parameters the reflection
    /// mechanism cannot supply — the *zara* case: "failed due to the
    /// missing parameters transmitted in the reflection mechanism."
    MissingCtorParameters,
    /// The class does not exist in the app.
    UnknownClass,
    /// The class exists but is not a fragment.
    NotAFragment,
    /// The class is abstract and cannot be instantiated.
    AbstractClass,
    /// No fragment container exists in the current activity's layout.
    NoContainer,
}

impl fmt::Display for ReflectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReflectError::NoFragmentManager => {
                write!(f, "host activity has no FragmentManager")
            }
            ReflectError::MissingCtorParameters => {
                write!(f, "fragment constructor requires parameters")
            }
            ReflectError::UnknownClass => write!(f, "class not found"),
            ReflectError::NotAFragment => write!(f, "class is not a Fragment"),
            ReflectError::AbstractClass => write!(f, "class is abstract"),
            ReflectError::NoContainer => write!(f, "no fragment container in current layout"),
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoApp => write!(f, "no app installed"),
            DeviceError::Unresolved(what) => write!(f, "intent did not resolve: {what}"),
            DeviceError::NotForceStartable(c) => {
                write!(f, "{c} has no MAIN action; cannot `am start -n` it")
            }
            DeviceError::Crashed { reason } => write!(f, "app force-closed: {reason}"),
            DeviceError::NoSuchWidget(id) => write!(f, "no visible widget with id '{id}'"),
            DeviceError::NotClickable(id) => write!(f, "widget '{id}' is not clickable"),
            DeviceError::NotEditable(id) => write!(f, "widget '{id}' accepts no text input"),
            DeviceError::NotRunning => write!(f, "device is not running an activity"),
            DeviceError::ReflectionFailed { fragment, why } => {
                write!(f, "reflective switch to {fragment} failed: {why}")
            }
            DeviceError::StackOverflow => write!(f, "activity back stack overflow"),
            DeviceError::Anr { ticks } => {
                write!(f, "ANR: event delivery delayed {ticks} ticks past the input deadline")
            }
            DeviceError::TransientStart => {
                write!(f, "am start failed transiently (activity manager timeout)")
            }
            DeviceError::AgentDied { detail } => write!(f, "device agent died: {detail}"),
            DeviceError::AgentTimeout { ms } => {
                write!(f, "device agent did not answer within {ms} ms")
            }
            DeviceError::Protocol { detail } => write!(f, "device protocol error: {detail}"),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_subject() {
        let e = DeviceError::ReflectionFailed {
            fragment: "a.F".into(),
            why: ReflectError::MissingCtorParameters,
        };
        let s = e.to_string();
        assert!(s.contains("a.F") && s.contains("parameters"));
        assert!(DeviceError::NoSuchWidget("go".into()).to_string().contains("go"));
    }

    #[test]
    fn classification_covers_the_three_buckets() {
        assert_eq!(DeviceError::Anr { ticks: 5_500 }.class(), ErrorClass::Transient);
        assert_eq!(DeviceError::TransientStart.class(), ErrorClass::Transient);
        assert_eq!(DeviceError::NoSuchWidget("x".into()).class(), ErrorClass::WidgetGone);
        assert_eq!(DeviceError::NotClickable("x".into()).class(), ErrorClass::WidgetGone);
        assert_eq!(DeviceError::NotEditable("x".into()).class(), ErrorClass::WidgetGone);
        assert_eq!(DeviceError::NotRunning.class(), ErrorClass::Fatal);
        assert_eq!(DeviceError::Crashed { reason: "e".into() }.class(), ErrorClass::Fatal);
        assert_eq!(DeviceError::StackOverflow.class(), ErrorClass::Fatal);
    }

    #[test]
    fn infrastructure_errors_are_their_own_class() {
        assert_eq!(
            DeviceError::AgentDied { detail: "exit 137".into() }.class(),
            ErrorClass::Infrastructure
        );
        assert_eq!(DeviceError::AgentTimeout { ms: 500 }.class(), ErrorClass::Infrastructure);
        assert_eq!(
            DeviceError::Protocol { detail: "bad frame".into() }.class(),
            ErrorClass::Infrastructure
        );
    }

    #[test]
    fn device_errors_roundtrip_through_json() {
        let errors = vec![
            DeviceError::Anr { ticks: 5_500 },
            DeviceError::NoSuchWidget("go".into()),
            DeviceError::ReflectionFailed {
                fragment: "a.F".into(),
                why: ReflectError::NoContainer,
            },
            DeviceError::AgentDied { detail: "pipe closed".into() },
            DeviceError::AgentTimeout { ms: 250 },
            DeviceError::Protocol { detail: "id mismatch".into() },
        ];
        for e in errors {
            let json = serde_json::to_string(&e).expect("serializes");
            let back: DeviceError = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, e);
        }
    }
}
