//! The ADB facade: the command-line surface FragDroid drives the phone
//! through (§VI-A's three reach methods).

use crate::device::Device;
use crate::error::DeviceError;
use crate::outcome::EventOutcome;
use crate::script::{run_script, ScriptReport, TestScript};

/// A borrowed handle exposing the `adb` commands the paper names.
pub struct Adb<'d> {
    device: &'d mut Device,
}

impl<'d> Adb<'d> {
    /// Wraps a device.
    pub fn new(device: &'d mut Device) -> Self {
        Adb { device }
    }

    /// `adb shell am start -n <COMPONENT> -a android.intent.action.MAIN
    /// -c android.intent.category.LAUNCHER` — launches the app through its
    /// entry activity (reach method 1).
    pub fn am_start_launcher(&mut self) -> Result<EventOutcome, DeviceError> {
        self.device.launch()
    }

    /// `adb shell am instrument -w <TestPackageName>
    /// android.test.InstrumentationTestRunner` — runs a packaged Robotium
    /// test case (reach method 2).
    pub fn am_instrument(&mut self, script: &TestScript) -> ScriptReport {
        run_script(self.device, script)
    }

    /// `adb shell am start -n <COMPONENT>` — forcibly starts one activity;
    /// requires the MAIN-action manifest rewrite (reach method 3).
    pub fn am_start(&mut self, component: &str) -> Result<EventOutcome, DeviceError> {
        self.device.am_start(component)
    }

    /// The underlying device (for observations between commands).
    pub fn device(&self) -> &Device {
        self.device
    }
}
