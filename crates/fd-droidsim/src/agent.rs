//! The device-agent serve loop: the subprocess side of the wire
//! protocol.
//!
//! `fd-cli device-agent` runs this loop over stdin/stdout; tests run it
//! on a thread over in-memory pipes. Either way the agent is a thin
//! request interpreter over an [`InProcessDevice`] — the same trait
//! implementation the in-process backend uses — so a subprocess-backed
//! run executes the exact same simulator code path as an in-process one,
//! which is what makes byte-identical report parity provable rather than
//! hopeful.
//!
//! Failure behavior is deliberately blunt: a malformed frame ends the
//! loop (resynchronizing a corrupt length-prefixed stream is guesswork),
//! and [`AgentOptions::die_after`] makes the agent hang up without
//! replying after a fixed number of requests — the deterministic
//! SIGKILL stand-in the recovery tests and CI kill-injection use.

use crate::backend::{DeviceApi, InProcessDevice};
use crate::proto::{
    decode_payload, encode_frame, from_hex, AgentRequest, AgentResponse, Envelope, FrameBuffer,
};
use std::io::{Read, Write};

/// How a serve loop should behave beyond the straight protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentOptions {
    /// Serve this many requests, then hang up without replying to the
    /// next one — a deterministic stand-in for the agent being
    /// SIGKILLed at that request boundary. `None` serves forever.
    pub die_after: Option<u64>,
}

/// Interprets one request against the agent's device.
fn apply(device: &mut InProcessDevice, request: AgentRequest) -> AgentResponse {
    match request {
        AgentRequest::Install { container_hex, config } => {
            let result = from_hex(&container_hex)
                .map_err(|e| e.to_string())
                .map(bytes::Bytes::from)
                .and_then(|b| fd_apk::decompile(&b).map_err(|e| format!("{e:?}")))
                .and_then(|app| device.install_app(&app, config).map_err(|e| e.to_string()));
            AgentResponse::Installed(result)
        }
        AgentRequest::Launch => AgentResponse::Outcome(device.launch()),
        AgentRequest::AmStart { component } => AgentResponse::Outcome(device.am_start(&component)),
        AgentRequest::Click { id } => AgentResponse::Outcome(device.click(&id)),
        AgentRequest::EnterText { id, text } => AgentResponse::Unit(device.enter_text(&id, &text)),
        AgentRequest::DismissOverlay => AgentResponse::Outcome(device.dismiss_overlay()),
        AgentRequest::Back => AgentResponse::Outcome(device.back()),
        AgentRequest::SwipeOpenDrawer => AgentResponse::Outcome(device.swipe_open_drawer()),
        AgentRequest::ReflectSwitchFragment { fragment } => {
            AgentResponse::Outcome(device.reflect_switch_fragment(&fragment))
        }
        AgentRequest::Observe => AgentResponse::Observation(device.observe()),
        AgentRequest::Signature => AgentResponse::Signature(device.signature()),
        AgentRequest::VisibleWidgets => AgentResponse::Widgets(device.visible_widgets()),
        AgentRequest::StackDepth => AgentResponse::Count(device.stack_depth()),
        AgentRequest::IsCrashed => AgentResponse::Flag(device.is_crashed()),
        AgentRequest::CrashSite => AgentResponse::Signature(device.crash_site()),
        AgentRequest::Invocations => AgentResponse::Invocations(device.invocations()),
        AgentRequest::FaultRecordsSince { from } => {
            AgentResponse::FaultRecords(device.fault_records_since(from))
        }
        AgentRequest::FaultLog => AgentResponse::FaultLog(device.fault_log()),
        AgentRequest::FaultsInjected => AgentResponse::Count(device.faults_injected()),
        AgentRequest::Clock => AgentResponse::Clock(device.clock()),
        AgentRequest::AdvanceClock { ticks } => AgentResponse::Unit(device.advance_clock(ticks)),
        AgentRequest::Reset => AgentResponse::Unit(device.reset()),
        AgentRequest::Grant { permission } => AgentResponse::Unit(device.grant(&permission)),
        AgentRequest::Revoke { permission } => AgentResponse::Unit(device.revoke(&permission)),
        AgentRequest::Ping => AgentResponse::Pong,
        AgentRequest::Shutdown => AgentResponse::Bye,
    }
}

/// Runs the serve loop until EOF, a protocol error, an orderly
/// [`AgentRequest::Shutdown`], or the [`AgentOptions::die_after`] cutoff.
pub fn serve<R: Read, W: Write>(
    mut input: R,
    mut output: W,
    options: AgentOptions,
) -> std::io::Result<()> {
    let mut device = InProcessDevice::new();
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut served = 0u64;
    loop {
        // Drain every complete frame already buffered before reading.
        loop {
            let payload = match frames.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // Corrupt stream: hang up rather than guess at resync.
                Err(_) => return Ok(()),
            };
            let Ok(envelope) = decode_payload::<AgentRequest>(&payload) else {
                return Ok(());
            };
            if options.die_after == Some(served) {
                // The SIGKILL stand-in: request received, no reply, gone.
                return Ok(());
            }
            served += 1;
            let shutdown = matches!(envelope.body, AgentRequest::Shutdown);
            let reply = Envelope { id: envelope.id, body: apply(&mut device, envelope.body) };
            output.write_all(&encode_frame(&reply))?;
            output.flush()?;
            if shutdown {
                return Ok(());
            }
        }
        match input.read(&mut chunk) {
            Ok(0) => return Ok(()), // client hung up
            Ok(n) => frames.push(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::proto::to_hex;

    fn install_request(id: u64) -> Vec<u8> {
        let gen = fd_appgen::templates::quickstart();
        let mut app = gen.app.clone();
        app.manifest.add_main_action_everywhere();
        let container = fd_apk::pack(&app);
        encode_frame(&Envelope {
            id,
            body: AgentRequest::Install {
                container_hex: to_hex(&container),
                config: DeviceConfig::default(),
            },
        })
    }

    fn parse_replies(bytes: &[u8]) -> Vec<Envelope<AgentResponse>> {
        let mut fb = FrameBuffer::new();
        fb.push(bytes);
        let mut out = Vec::new();
        while let Ok(Some(p)) = fb.next_frame() {
            out.push(decode_payload(&p).expect("agent replies are well-formed"));
        }
        out
    }

    #[test]
    fn serves_install_launch_observe() {
        let mut input = install_request(1);
        input.extend(encode_frame(&Envelope { id: 2, body: AgentRequest::Launch }));
        input.extend(encode_frame(&Envelope { id: 3, body: AgentRequest::Observe }));
        input.extend(encode_frame(&Envelope { id: 4, body: AgentRequest::Shutdown }));
        let mut output = Vec::new();
        serve(&input[..], &mut output, AgentOptions::default()).expect("serves");
        let replies = parse_replies(&output);
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0].id, 1);
        assert!(matches!(&replies[0].body, AgentResponse::Installed(Ok(()))));
        assert!(matches!(&replies[1].body, AgentResponse::Outcome(Ok(_))));
        match &replies[2].body {
            AgentResponse::Observation(Ok(Some(obs))) => {
                assert!(!obs.activity.as_str().is_empty());
            }
            other => panic!("expected an observation, got {other:?}"),
        }
        assert!(matches!(&replies[3].body, AgentResponse::Bye));
    }

    #[test]
    fn requests_before_install_get_no_app() {
        let input = encode_frame(&Envelope { id: 9, body: AgentRequest::Launch });
        let mut output = Vec::new();
        serve(&input[..], &mut output, AgentOptions::default()).expect("serves");
        let replies = parse_replies(&output);
        assert!(matches!(&replies[0].body, AgentResponse::Outcome(Err(crate::DeviceError::NoApp))));
    }

    #[test]
    fn die_after_hangs_up_without_replying() {
        let mut input = install_request(1);
        input.extend(encode_frame(&Envelope { id: 2, body: AgentRequest::Launch }));
        input.extend(encode_frame(&Envelope { id: 3, body: AgentRequest::Clock }));
        let mut output = Vec::new();
        serve(&input[..], &mut output, AgentOptions { die_after: Some(1) }).expect("serves");
        let replies = parse_replies(&output);
        assert_eq!(replies.len(), 1, "request index 1 (Launch) got no reply");
        assert_eq!(replies[0].id, 1);
    }

    #[test]
    fn corrupt_frames_end_the_session_quietly() {
        let mut input = install_request(1);
        input.extend_from_slice(b"not a frame at all");
        let mut output = Vec::new();
        serve(&input[..], &mut output, AgentOptions::default()).expect("no io error");
        assert_eq!(parse_replies(&output).len(), 1);
    }
}
