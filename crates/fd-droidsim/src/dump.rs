//! A `uiautomator dump`-style XML rendering of the current UI hierarchy.
//!
//! Tools like Dynodroid "leverage the Hierarchy Viewer … to infer a UI
//! model during execution". This module provides the equivalent artifact
//! for the simulated device: an XML document of the visible widget tree,
//! annotated with resource-IDs, classes, clickability, bounds, and — the
//! part real dumps lack — the owning fragment where one exists.

use crate::screen::Screen;
use fd_apk::{Widget, WidgetKind};
use std::fmt::Write;

fn widget_class(kind: WidgetKind) -> &'static str {
    match kind {
        WidgetKind::Button => "android.widget.Button",
        WidgetKind::ImageButton => "android.widget.ImageButton",
        WidgetKind::TextView => "android.widget.TextView",
        WidgetKind::EditText => "android.widget.EditText",
        WidgetKind::CheckBox => "android.widget.CheckBox",
        WidgetKind::ListView => "android.widget.ListView",
        WidgetKind::Group => "android.widget.LinearLayout",
        WidgetKind::FragmentContainer => "android.widget.FrameLayout",
        WidgetKind::Drawer => "androidx.drawerlayout.widget.DrawerLayout",
        WidgetKind::TabBar => "com.google.android.material.tabs.TabLayout",
        WidgetKind::ActionBar => "androidx.appcompat.widget.Toolbar",
        WidgetKind::WebView => "android.webkit.WebView",
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn dump_widget(out: &mut String, screen: &Screen, widget: &Widget, indent: usize) {
    let pad = "  ".repeat(indent);
    let id_attr = widget
        .id
        .as_deref()
        .map(|id| format!(" resource-id=\"{}\"", xml_escape(id)))
        .unwrap_or_default();
    let owner_attr = widget
        .id
        .as_deref()
        .and_then(|id| screen.owner_fragment_of(id))
        .map(|f| format!(" fragment=\"{}\"", xml_escape(f.as_str())))
        .unwrap_or_default();
    let text_attr = if widget.text.is_empty() {
        String::new()
    } else {
        format!(" text=\"{}\"", xml_escape(&widget.text))
    };
    let open = if widget.children.is_empty() { "/>" } else { ">" };
    let _ = writeln!(
        out,
        "{pad}<node class=\"{}\"{}{}{} clickable=\"{}\"{open}",
        widget_class(widget.kind),
        id_attr,
        text_attr,
        owner_attr,
        widget.clickable,
    );
    if !widget.children.is_empty() {
        for child in &widget.children {
            dump_widget(out, screen, child, indent + 1);
        }
        let _ = writeln!(out, "{pad}</node>");
    }
}

/// Renders the screen's full hierarchy (activity layout plus every
/// attached fragment pane) as an XML document.
pub fn dump_hierarchy(screen: &Screen) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(out, "<hierarchy activity=\"{}\">", xml_escape(screen.activity.as_str()));
    if let Some(layout) = &screen.layout {
        dump_widget(&mut out, screen, &layout.root, 1);
    }
    for (container, pane) in &screen.fragments {
        let _ = writeln!(
            out,
            "  <fragment container=\"{}\" class=\"{}\" via-manager=\"{}\">",
            xml_escape(container),
            xml_escape(pane.fragment.as_str()),
            pane.via_manager,
        );
        if let Some(layout) = &pane.layout {
            dump_widget(&mut out, screen, &layout.root, 2);
        }
        let _ = writeln!(out, "  </fragment>");
    }
    out.push_str("</hierarchy>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::Intent;
    use crate::screen::FragmentPane;
    use fd_apk::Layout;

    #[test]
    fn dump_contains_widgets_fragments_and_escapes() {
        let mut screen = Screen::new("d.Main".into(), Intent::empty());
        screen.layout = Some(Layout::new(
            "m",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go").with_text("a<b&\"c\"")),
        ));
        screen.fragments.insert(
            "content".into(),
            FragmentPane {
                fragment: "d.F".into(),
                layout: Some(Layout::new("f", Widget::new(WidgetKind::TextView).with_id("lbl"))),
                via_manager: true,
            },
        );
        let xml = dump_hierarchy(&screen);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("activity=\"d.Main\""));
        assert!(xml.contains("resource-id=\"go\""));
        assert!(xml.contains("text=\"a&lt;b&amp;&quot;c&quot;\""));
        assert!(xml.contains("<fragment container=\"content\" class=\"d.F\" via-manager=\"true\">"));
        assert!(xml.contains("fragment=\"d.F\""), "widget annotated with owning fragment");
        assert!(xml.ends_with("</hierarchy>\n"));
    }

    #[test]
    fn childless_widgets_self_close() {
        let mut screen = Screen::new("d.Main".into(), Intent::empty());
        screen.layout = Some(Layout::new("m", Widget::new(WidgetKind::Button).with_id("b")));
        let xml = dump_hierarchy(&screen);
        assert!(xml.contains("/>"));
        assert!(!xml.contains(
            "<node class=\"android.widget.Button\" resource-id=\"b\" clickable=\"true\">"
        ));
    }
}
