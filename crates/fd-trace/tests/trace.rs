//! Integration tests: JSONL and Chrome sinks round-trip a real tracer's
//! output; overflow and summary semantics hold end to end.

use fd_trace::{
    chrome, Phase, Trace, TraceClock, TraceConfig, TraceEvent, TraceRecord, TraceSummary, Tracer,
};

/// A small but representative trace: two tracks with spans, events, and
/// counters, one of them overflowing.
fn sample_trace() -> Trace {
    let clock = TraceClock::start();
    let config = TraceConfig::on();

    let worker0 = Tracer::new(&config, clock, 0);
    {
        let _app = worker0.span(Phase::App, "com.example.alpha");
        {
            let _s = worker0.span(Phase::Static, "extract");
            let _p = worker0.span(Phase::StaticPass, "aftm-init");
        }
        let _e = worker0.span(Phase::Explore, "explore");
        worker0.set_sim_clock(40);
        worker0.event(|| TraceEvent::EventDispatched { op: "click".into() });
        worker0.event(|| TraceEvent::NewActivity { name: "com.example.alpha.Main".into() });
        worker0.event(|| TraceEvent::TransitionDiscovered {
            from: "com.example.alpha.Main".into(),
            to: "com.example.alpha.Detail".into(),
        });
        worker0.count("events_dispatched", 1);
    }

    let worker1 = Tracer::new(&config, clock, 1);
    {
        let _app = worker1.span(Phase::App, "com.example.beta");
        worker1.event(|| TraceEvent::FaultInjected { kind: "drop-event".into() });
        worker1.event(|| TraceEvent::Retry { attempt: 1 });
        worker1.event(|| TraceEvent::Crash {
            activity: "com.example.beta.Main".into(),
            reason: "NullPointerException".into(),
        });
        worker1.event(|| TraceEvent::Recovery { recovered: true });
    }

    let mut trace = Trace::new("fd-trace tests");
    trace.absorb(worker0.finish());
    trace.absorb(worker1.finish());
    trace
}

#[test]
fn jsonl_roundtrip_is_lossless() {
    let trace = sample_trace();
    let jsonl = trace.to_jsonl();
    assert!(jsonl.lines().count() > 5, "one record per line");
    let parsed = Trace::from_jsonl(&jsonl).expect("well-formed jsonl parses");
    assert_eq!(parsed.meta, trace.meta);
    assert_eq!(parsed.records, trace.records);
}

#[test]
fn malformed_jsonl_line_is_an_error_with_line_number() {
    let mut jsonl = sample_trace().to_jsonl();
    jsonl.push_str("{ not json\n");
    let err = Trace::from_jsonl(&jsonl).expect_err("bad line rejected");
    assert!(err.contains("trace line"), "error names the line: {err}");
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let trace = sample_trace();
    let chrome_json = chrome::to_chrome_json(&trace);
    let value: serde_json::Value = serde_json::from_str(&chrome_json).expect("valid JSON");
    let num_u64 = |v: &serde_json::Value| match v {
        serde_json::Value::Number(n) => n.as_u64(),
        _ => None,
    };
    let root = value.as_object().expect("object root");
    let events = root.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!events.is_empty());
    let mut complete = 0usize;
    let mut instants = 0usize;
    for event in events {
        let obj = event.as_object().expect("event object");
        let ph = obj.get("ph").and_then(|v| v.as_str()).expect("ph field");
        match ph {
            "X" => {
                complete += 1;
                assert!(obj.get("ts").and_then(&num_u64).is_some(), "X has ts");
                assert!(obj.get("dur").and_then(&num_u64).is_some(), "X has dur");
                assert!(obj.get("tid").and_then(&num_u64).is_some(), "X has tid");
                assert!(obj.get("cat").and_then(|v| v.as_str()).is_some(), "X has cat");
            }
            "i" => {
                instants += 1;
                assert!(obj.get("ts").and_then(&num_u64).is_some(), "i has ts");
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
        assert!(obj.get("name").is_some());
    }
    assert_eq!(complete, 5, "every span becomes one complete event");
    assert_eq!(instants, 7, "every typed event becomes one instant");
}

#[test]
fn ring_overflow_surfaces_as_dropped_record() {
    let clock = TraceClock::start();
    let config = TraceConfig::on().with_capacity(8);
    let tracer = Tracer::new(&config, clock, 5);
    for i in 0..100u64 {
        tracer.event(|| TraceEvent::Retry { attempt: i });
    }
    let track = tracer.finish();
    // 100 events + 0 counters into capacity 8.
    assert_eq!(track.records.len(), 8);
    assert_eq!(track.dropped, 92);
    // Oldest-dropped: the survivors are the newest attempts.
    let first_kept = track
        .records
        .iter()
        .find_map(|r| match r {
            TraceRecord::Event(e) => match &e.event {
                TraceEvent::Retry { attempt } => Some(*attempt),
                _ => None,
            },
            _ => None,
        })
        .expect("an event survived");
    assert_eq!(first_kept, 92);

    let mut trace = Trace::new("overflow");
    trace.absorb(track);
    assert_eq!(trace.total_dropped(), 92);
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("parses");
    assert_eq!(parsed.total_dropped(), 92);
}

#[test]
fn summary_aggregates_phases_events_and_tops() {
    let trace = sample_trace();
    let summary = TraceSummary::compute(&trace);
    assert_eq!(summary.process, "fd-trace tests");
    assert_eq!(summary.spans, 5);
    assert_eq!(summary.events, 7);
    assert_eq!(summary.events_dispatched, 1);
    assert_eq!(summary.faults, 1);
    assert_eq!(summary.retries, 1);
    assert_eq!(summary.crashes, 1);
    assert_eq!(summary.recoveries, 1);
    assert_eq!(summary.slowest_apps.len(), 2);
    assert!(summary.phase_totals_us.contains_key("static"));
    assert!(summary.phase_totals_us.contains_key("app"));
    // Hottest activities merge first-visits and transition destinations.
    assert!(summary
        .hottest_activities
        .iter()
        .any(|(name, hits)| name == "com.example.alpha.Detail" && *hits == 1));
    // The fault/retry/crash/recovery stream lands on the timeline in order.
    assert_eq!(summary.timeline.len(), 4);
    assert!(summary.timeline.windows(2).all(|w| w[0].wall_us <= w[1].wall_us));
    // Render never panics and mentions the headline numbers.
    let text = summary.render();
    assert!(text.contains("per-phase wall time"));
    assert!(text.contains("slowest apps"));

    // The summary itself round-trips through JSON (used by --json).
    let json = serde_json::to_string(&summary).expect("summary serializes");
    let back: TraceSummary = serde_json::from_str(&json).expect("summary parses");
    assert_eq!(back, summary);
}
