//! Chrome `trace_event` export: the JSON object format that
//! `chrome://tracing` and Perfetto load directly.
//!
//! Spans become complete (`"ph": "X"`) events with microsecond `ts`/`dur`
//! on one `tid` lane per worker track; typed events become instants
//! (`"ph": "i"`) with their payload in `args`.

use crate::model::{Trace, TraceEvent, TraceRecord};
use serde_json::{to_value, Map, Value};

const PID: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (key, value) in entries {
        map.insert(key.to_string(), value);
    }
    Value::Object(map)
}

fn event_args(event: &TraceEvent) -> Value {
    // The externally tagged serialization is {"Variant": {fields…}} (or a
    // bare string for unit variants); unwrap to the fields for `args`.
    match to_value(event) {
        Value::Object(map) => map.iter().next().map(|(_, v)| v.clone()).unwrap_or(Value::Null),
        other => other,
    }
}

/// Renders a trace as a Chrome `trace_event` JSON object.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(trace.records.len() + 1);
    events.push(obj(vec![
        ("name", to_value(&"process_name")),
        ("ph", to_value(&"M")),
        ("pid", to_value(&PID)),
        ("args", obj(vec![("name", to_value(&trace.meta.process))])),
    ]));
    for record in &trace.records {
        match record {
            TraceRecord::Span(s) => events.push(obj(vec![
                ("name", to_value(&s.name)),
                ("cat", to_value(&s.phase.as_str())),
                ("ph", to_value(&"X")),
                ("ts", to_value(&s.wall_start_us)),
                ("dur", to_value(&s.wall_dur_us)),
                ("pid", to_value(&PID)),
                ("tid", to_value(&s.track)),
                (
                    "args",
                    obj(vec![
                        ("sim_start", to_value(&s.sim_start)),
                        ("sim_end", to_value(&s.sim_end)),
                    ]),
                ),
            ])),
            TraceRecord::Event(e) => events.push(obj(vec![
                ("name", to_value(&e.event.kind())),
                ("cat", to_value(&"event")),
                ("ph", to_value(&"i")),
                ("s", to_value(&"t")),
                ("ts", to_value(&e.wall_us)),
                ("pid", to_value(&PID)),
                ("tid", to_value(&e.track)),
                ("args", event_args(&e.event)),
            ])),
            // Counters and drop markers have no timestamp; they live in
            // the JSONL sink and the summary, not on the timeline.
            TraceRecord::Counter(_) | TraceRecord::Dropped(_) | TraceRecord::Meta(_) => {}
        }
    }
    let root =
        obj(vec![("displayTimeUnit", to_value(&"ms")), ("traceEvents", Value::Array(events))]);
    root.render_json(false)
}
