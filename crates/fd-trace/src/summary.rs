//! Post-hoc trace analysis: the aggregation behind `fd-cli trace`.

use crate::model::{Phase, Trace, TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One fault/retry/crash/recovery occurrence on the timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Wall-clock time, µs since the trace epoch.
    pub wall_us: u64,
    /// The worker track it happened on.
    pub track: u64,
    /// Human-readable description (`fault drop-event`, `retry #2`, …).
    pub what: String,
}

/// Aggregated view of one trace file.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// What produced the trace.
    pub process: String,
    /// Total records (spans + events + counters + drop markers).
    pub records: usize,
    /// Spans seen.
    pub spans: usize,
    /// Events seen.
    pub events: usize,
    /// Records lost to ring overflow.
    pub dropped: u64,
    /// Summed span wall time per phase, µs (keys are [`Phase::as_str`]).
    pub phase_totals_us: BTreeMap<String, u64>,
    /// Summed wall time of the per-app spans, µs.
    pub app_total_us: u64,
    /// `(package, wall µs)` of the slowest apps, descending.
    pub slowest_apps: Vec<(String, u64)>,
    /// `(activity, hits)` most-seen activities (first visits + incoming
    /// transitions), descending.
    pub hottest_activities: Vec<(String, u64)>,
    /// `(fragment, hits)` most-seen fragments, descending.
    pub hottest_fragments: Vec<(String, u64)>,
    /// UI events dispatched (from the `EventDispatched` stream).
    pub events_dispatched: u64,
    /// Faults injected.
    pub faults: u64,
    /// Event retries.
    pub retries: u64,
    /// Crashes.
    pub crashes: u64,
    /// Successful crash recoveries.
    pub recoveries: u64,
    /// Inputs rejected at the ingestion frontier.
    #[serde(default)]
    pub rejections: u64,
    /// Fuzz mutants that violated the panic-free invariant.
    #[serde(default)]
    pub fuzz_violations: u64,
    /// Outcomes appended to a suite journal.
    #[serde(default)]
    pub checkpoint_writes: u64,
    /// Completed apps restored from a journal across resume events.
    #[serde(default)]
    pub checkpoint_resumed: u64,
    /// Flake-triage retry attempts.
    #[serde(default)]
    pub flake_retries: u64,
    /// Device-infrastructure incidents (agent deaths, protocol timeouts).
    #[serde(default)]
    pub device_incidents: u64,
    /// Devices the pool retired (quarantine or failed health check).
    #[serde(default)]
    pub devices_retired: u64,
    /// Serve socket sessions opened.
    #[serde(default)]
    pub connections: u64,
    /// Submissions bounced off the full serve queue (`Busy`).
    #[serde(default)]
    pub queue_saturations: u64,
    /// Graceful drains started.
    #[serde(default)]
    pub drains: u64,
    /// Jobs restored from a serve job journal at startup.
    #[serde(default)]
    pub recovered_jobs: u64,
    /// Shard leases granted by the dispatch coordinator.
    #[serde(default)]
    pub lease_grants: u64,
    /// Shard leases revoked (expiry, probe failure, failed run).
    #[serde(default)]
    pub lease_revocations: u64,
    /// Shards re-granted after a revocation.
    #[serde(default)]
    pub shard_reassignments: u64,
    /// Endpoints quarantined by the dispatch coordinator.
    #[serde(default)]
    pub worker_quarantines: u64,
    /// Fault/retry/crash/recovery occurrences in wall-clock order,
    /// truncated to [`TraceSummary::TIMELINE_CAP`].
    pub timeline: Vec<TimelineEntry>,
}

fn top(map: BTreeMap<String, u64>, keep: usize) -> Vec<(String, u64)> {
    let mut pairs: Vec<(String, u64)> = map.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(keep);
    pairs
}

impl TraceSummary {
    /// Cap on [`TraceSummary::timeline`] entries.
    pub const TIMELINE_CAP: usize = 200;
    /// Cap on the top-N lists.
    pub const TOP_CAP: usize = 10;

    /// Aggregates a trace.
    pub fn compute(trace: &Trace) -> Self {
        let mut summary = TraceSummary {
            process: trace.meta.process.clone(),
            records: trace.records.len(),
            ..TraceSummary::default()
        };
        let mut apps: Vec<(String, u64)> = Vec::new();
        let mut activities: BTreeMap<String, u64> = BTreeMap::new();
        let mut fragments: BTreeMap<String, u64> = BTreeMap::new();
        for record in &trace.records {
            match record {
                TraceRecord::Span(s) => {
                    summary.spans += 1;
                    *summary.phase_totals_us.entry(s.phase.as_str().to_string()).or_insert(0) +=
                        s.wall_dur_us;
                    if s.phase == Phase::App {
                        summary.app_total_us += s.wall_dur_us;
                        apps.push((s.name.clone(), s.wall_dur_us));
                    }
                }
                TraceRecord::Event(e) => {
                    summary.events += 1;
                    let note = match &e.event {
                        TraceEvent::EventDispatched { .. } => {
                            summary.events_dispatched += 1;
                            None
                        }
                        TraceEvent::FaultInjected { kind } => {
                            summary.faults += 1;
                            Some(format!("fault {kind}"))
                        }
                        TraceEvent::Retry { attempt } => {
                            summary.retries += 1;
                            Some(format!("retry #{attempt}"))
                        }
                        TraceEvent::Crash { activity, reason } => {
                            summary.crashes += 1;
                            Some(format!("crash in {activity}: {reason}"))
                        }
                        TraceEvent::Recovery { recovered } => {
                            if *recovered {
                                summary.recoveries += 1;
                            }
                            Some(format!(
                                "recovery {}",
                                if *recovered { "succeeded" } else { "failed" }
                            ))
                        }
                        TraceEvent::TransitionDiscovered { to, .. } => {
                            *activities.entry(to.clone()).or_insert(0) += 1;
                            None
                        }
                        TraceEvent::NewActivity { name } => {
                            *activities.entry(name.clone()).or_insert(0) += 1;
                            None
                        }
                        TraceEvent::NewFragment { name } => {
                            *fragments.entry(name.clone()).or_insert(0) += 1;
                            None
                        }
                        TraceEvent::InputRejected { reason } => {
                            summary.rejections += 1;
                            Some(format!("rejected: {reason}"))
                        }
                        TraceEvent::FuzzViolation { target, case } => {
                            summary.fuzz_violations += 1;
                            Some(format!("fuzz violation in {target} mutant #{case}"))
                        }
                        TraceEvent::CheckpointWrite { .. } => {
                            summary.checkpoint_writes += 1;
                            None
                        }
                        TraceEvent::CheckpointResume { skipped, torn_tail_bytes } => {
                            summary.checkpoint_resumed += skipped;
                            Some(format!(
                                "resumed: {skipped} apps from journal ({torn_tail_bytes} torn bytes dropped)"
                            ))
                        }
                        TraceEvent::FlakeRetry { package, attempt, passed } => {
                            summary.flake_retries += 1;
                            Some(format!(
                                "flake retry #{attempt} of {package}: {}",
                                if *passed { "passed" } else { "failed" }
                            ))
                        }
                        TraceEvent::DeviceLeased { .. } => None,
                        TraceEvent::DeviceIncident { detail } => {
                            summary.device_incidents += 1;
                            Some(format!("device incident: {detail}"))
                        }
                        TraceEvent::DeviceRetired { lane } => {
                            summary.devices_retired += 1;
                            Some(format!("device retired on lane {lane}"))
                        }
                        TraceEvent::ShardMerged { shard, apps } => {
                            Some(format!("merged shard {shard} ({apps} apps)"))
                        }
                        TraceEvent::JobSubmitted { job } => Some(format!("job {job} submitted")),
                        TraceEvent::JobCompleted { job, rejected } => Some(format!(
                            "job {job} {}",
                            if *rejected { "rejected" } else { "completed" }
                        )),
                        TraceEvent::ConnectionOpened { .. } => {
                            summary.connections += 1;
                            None
                        }
                        TraceEvent::ConnectionClosed { .. } => None,
                        TraceEvent::QueueSaturated { job } => {
                            summary.queue_saturations += 1;
                            Some(format!("job {job} bounced: queue full"))
                        }
                        TraceEvent::DrainStarted => {
                            summary.drains += 1;
                            Some("graceful drain started".to_string())
                        }
                        TraceEvent::JournalRecovered { jobs } => {
                            summary.recovered_jobs += jobs;
                            Some(format!("recovered {jobs} jobs from the job journal"))
                        }
                        TraceEvent::LeaseGranted { .. } => {
                            summary.lease_grants += 1;
                            None
                        }
                        TraceEvent::LeaseRevoked { shard, worker, generation } => {
                            summary.lease_revocations += 1;
                            Some(format!(
                                "lease on shard {shard} revoked from worker {worker} \
                                 (generation {generation})"
                            ))
                        }
                        TraceEvent::ShardReassigned { shard, worker } => {
                            summary.shard_reassignments += 1;
                            Some(format!("shard {shard} reassigned to worker {worker}"))
                        }
                        TraceEvent::WorkerQuarantined { worker } => {
                            summary.worker_quarantines += 1;
                            Some(format!("worker {worker} quarantined"))
                        }
                    };
                    if let Some(what) = note {
                        summary.timeline.push(TimelineEntry {
                            wall_us: e.wall_us,
                            track: e.track,
                            what,
                        });
                    }
                }
                TraceRecord::Counter(_) => {}
                TraceRecord::Dropped(d) => summary.dropped += d.count,
                TraceRecord::Meta(_) => {}
            }
        }
        apps.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        apps.truncate(Self::TOP_CAP);
        summary.slowest_apps = apps;
        summary.hottest_activities = top(activities, Self::TOP_CAP);
        summary.hottest_fragments = top(fragments, Self::TOP_CAP);
        summary.timeline.sort_by_key(|t| t.wall_us);
        summary.timeline.truncate(Self::TIMELINE_CAP);
        summary
    }

    /// Summed wall time of the top-level phases (decompile/pack/static/
    /// explore), µs — the number that should land within a few percent of
    /// the suite's per-app wall-time total.
    pub fn top_level_phase_total_us(&self) -> u64 {
        self.phase_totals_us
            .iter()
            .filter(|(name, _)| {
                [Phase::Decompile, Phase::Pack, Phase::Static, Phase::Explore]
                    .iter()
                    .any(|p| p.as_str() == name.as_str())
            })
            .map(|(_, us)| us)
            .sum()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |us: u64| us as f64 / 1000.0;
        out.push_str(&format!(
            "trace: {} ({} records: {} spans, {} events, {} dropped)\n",
            if self.process.is_empty() { "<unnamed>" } else { &self.process },
            self.records,
            self.spans,
            self.events,
            self.dropped
        ));
        out.push_str("per-phase wall time:\n");
        for (phase, us) in &self.phase_totals_us {
            out.push_str(&format!("  {phase:<12} {:>10.2} ms\n", ms(*us)));
        }
        out.push_str(&format!(
            "events dispatched: {} ({} faults, {} retries, {} crashes, {} recovered)\n",
            self.events_dispatched, self.faults, self.retries, self.crashes, self.recoveries
        ));
        if self.rejections > 0 || self.fuzz_violations > 0 {
            out.push_str(&format!(
                "ingestion: {} inputs rejected, {} fuzz violations\n",
                self.rejections, self.fuzz_violations
            ));
        }
        if self.checkpoint_writes > 0 || self.checkpoint_resumed > 0 || self.flake_retries > 0 {
            out.push_str(&format!(
                "checkpoint: {} outcomes journaled, {} resumed from journal, {} flake retries\n",
                self.checkpoint_writes, self.checkpoint_resumed, self.flake_retries
            ));
        }
        if self.device_incidents > 0 || self.devices_retired > 0 {
            out.push_str(&format!(
                "device pool: {} infrastructure incidents, {} devices retired\n",
                self.device_incidents, self.devices_retired
            ));
        }
        if self.connections > 0
            || self.queue_saturations > 0
            || self.drains > 0
            || self.recovered_jobs > 0
        {
            out.push_str(&format!(
                "serve: {} connections, {} queue-full bounces, {} drains, {} jobs recovered\n",
                self.connections, self.queue_saturations, self.drains, self.recovered_jobs
            ));
        }
        if !self.slowest_apps.is_empty() {
            out.push_str("slowest apps:\n");
            for (app, us) in &self.slowest_apps {
                out.push_str(&format!("  {:>10.2} ms  {app}\n", ms(*us)));
            }
        }
        if !self.hottest_activities.is_empty() {
            out.push_str("hottest activities:\n");
            for (name, hits) in &self.hottest_activities {
                out.push_str(&format!("  {hits:>6}  {name}\n"));
            }
        }
        if !self.hottest_fragments.is_empty() {
            out.push_str("hottest fragments:\n");
            for (name, hits) in &self.hottest_fragments {
                out.push_str(&format!("  {hits:>6}  {name}\n"));
            }
        }
        if !self.timeline.is_empty() {
            out.push_str(&format!("fault/retry timeline (first {}):\n", self.timeline.len()));
            for entry in &self.timeline {
                out.push_str(&format!(
                    "  {:>12.3} ms  w{}  {}\n",
                    ms(entry.wall_us),
                    entry.track,
                    entry.what
                ));
            }
        }
        out
    }
}
