//! `fd-trace` — low-overhead structured tracing & profiling for the
//! FragDroid pipeline.
//!
//! The model is deliberately small:
//!
//! * **Spans** ([`Span`], emitted as [`SpanRecord`]) bracket a phase of
//!   work with wall-clock *and* simulated-device timestamps at enter and
//!   exit. They nest freely; a span is recorded when its guard drops.
//! * **Typed events** ([`TraceEvent`]) mark instants: a dispatched UI
//!   event, an injected fault, a retry, a crash, a recovery, a newly
//!   discovered transition.
//! * **Counters** accumulate per tracer and flush as [`CounterRecord`]s
//!   at drain time.
//!
//! Each worker thread owns its own [`Tracer`] writing into a private,
//! bounded [`ring::RingBuffer`] — the hot path takes no locks and
//! allocates only for record payloads. Overflow evicts the *oldest*
//! record and bumps an explicit drop counter that survives into the
//! drained trace, so a truncated trace is always visibly truncated.
//!
//! A disabled tracer ([`Tracer::disabled`], or any tracer built from
//! [`TraceConfig::off`]) is a true no-op: every method returns before
//! touching a buffer, event payload closures are never invoked, and runs
//! produce byte-identical reports to untraced ones (property-tested in
//! `fragdroid`).
//!
//! Drained [`TrackTrace`]s merge into a [`Trace`], which serializes to
//! two sinks: JSON Lines ([`Trace::to_jsonl`]) for machine analysis and
//! `fd-cli trace`, and Chrome `trace_event` JSON
//! ([`chrome::to_chrome_json`]) for `chrome://tracing` / Perfetto.
//!
//! ```
//! use fd_trace::{Phase, Tracer, TraceClock, TraceConfig, TraceEvent, Trace};
//!
//! let tracer = Tracer::new(&TraceConfig::on(), TraceClock::start(), 0);
//! {
//!     let _span = tracer.span(Phase::Explore, "demo");
//!     tracer.event(|| TraceEvent::EventDispatched { op: "click".into() });
//!     tracer.count("events_dispatched", 1);
//! }
//! let mut trace = Trace::new("example");
//! trace.absorb(tracer.finish());
//! let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
//! assert_eq!(parsed.records, trace.records);
//! ```

pub mod chrome;
pub mod model;
pub mod ring;
pub mod summary;

pub use model::{
    CounterRecord, DroppedRecord, EventRecord, MetaRecord, Phase, SpanRecord, Trace, TraceEvent,
    TraceRecord, TrackTrace, TRACE_VERSION,
};
pub use summary::{TimelineEntry, TraceSummary};

use ring::RingBuffer;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Default per-tracer ring capacity, in records. At roughly a hundred
/// bytes a record this bounds a worker's trace memory to a few MiB.
pub const DEFAULT_CAPACITY: usize = 32_768;

/// Whether and how to trace a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether tracing is on. Off means every tracer built from this
    /// config is a no-op.
    pub enabled: bool,
    /// Ring capacity per tracer (records). Overflow drops oldest.
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing off — the no-op config ([`Default`]).
    pub fn off() -> Self {
        TraceConfig { enabled: false, capacity: 0 }
    }

    /// Tracing on with [`DEFAULT_CAPACITY`].
    pub fn on() -> Self {
        TraceConfig { enabled: true, capacity: DEFAULT_CAPACITY }
    }

    /// Overrides the per-tracer ring capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// The trace's wall-clock epoch. `Copy`, so the suite can hand the same
/// epoch to every worker and all tracks share one timeline.
#[derive(Clone, Copy, Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// An epoch anchored at "now".
    pub fn start() -> Self {
        TraceClock { epoch: Instant::now() }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

struct TracerInner {
    clock: TraceClock,
    track: u64,
    buf: RefCell<RingBuffer>,
    counters: RefCell<BTreeMap<&'static str, u64>>,
    sim: Cell<u64>,
}

/// A per-worker trace collector. Cheap to pass by reference through the
/// pipeline; a disabled tracer no-ops everywhere. Not `Send`: every
/// worker builds its own from a shared [`TraceConfig`] + [`TraceClock`].
pub struct Tracer {
    inner: Option<Rc<TracerInner>>,
}

impl Tracer {
    /// A tracer for worker lane `track`. With `config.enabled == false`
    /// this is exactly [`Tracer::disabled`].
    pub fn new(config: &TraceConfig, clock: TraceClock, track: u64) -> Self {
        if !config.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Rc::new(TracerInner {
                clock,
                track,
                buf: RefCell::new(RingBuffer::new(config.capacity)),
                counters: RefCell::new(BTreeMap::new()),
                sim: Cell::new(0),
            })),
        }
    }

    /// The no-op tracer: records nothing, never invokes event closures.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Updates the simulated-device clock attached to subsequent records.
    pub fn set_sim_clock(&self, ticks: u64) {
        if let Some(inner) = &self.inner {
            inner.sim.set(ticks);
        }
    }

    /// Opens a span; it is recorded (with both enter and exit
    /// timestamps) when the returned guard drops.
    pub fn span(&self, phase: Phase, name: &str) -> Span {
        let Some(inner) = &self.inner else { return Span { state: None } };
        Span {
            state: Some(SpanState {
                inner: Rc::clone(inner),
                phase,
                name: name.to_string(),
                wall_start_us: inner.clock.now_us(),
                sim_start: inner.sim.get(),
            }),
        }
    }

    /// Records a typed instant event. The payload closure runs only when
    /// tracing is enabled, so call sites pay nothing when it is off.
    pub fn event(&self, build: impl FnOnce() -> TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let record = TraceRecord::Event(EventRecord {
            track: inner.track,
            wall_us: inner.clock.now_us(),
            sim: inner.sim.get(),
            event: build(),
        });
        inner.buf.borrow_mut().push(record);
    }

    /// Adds `delta` to the named counter (flushed at [`Tracer::finish`]).
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner.counters.borrow_mut().entry(name).or_insert(0) += delta;
        }
    }

    /// Drains the tracer into its track's records. Counters flush as
    /// [`CounterRecord`]s; ring overflow surfaces as
    /// [`TrackTrace::dropped`]. Live [`Span`] guards (if any) are
    /// abandoned: their records are simply not in this drain.
    pub fn finish(self) -> TrackTrace {
        let Some(inner) = self.inner else { return TrackTrace::default() };
        let track = inner.track;
        let counters: Vec<(String, u64)> = inner
            .counters
            .borrow()
            .iter()
            .map(|(name, value)| (name.to_string(), *value))
            .collect();
        let mut buf = inner.buf.borrow_mut();
        for (name, value) in counters {
            buf.push(TraceRecord::Counter(CounterRecord { track, name, value }));
        }
        let ring = std::mem::replace(&mut *buf, RingBuffer::new(0));
        drop(buf);
        let (records, dropped) = ring.into_parts();
        TrackTrace { track, records, dropped }
    }
}

struct SpanState {
    inner: Rc<TracerInner>,
    phase: Phase,
    name: String,
    wall_start_us: u64,
    sim_start: u64,
}

/// RAII guard returned by [`Tracer::span`]; emits the [`SpanRecord`] on
/// drop. A guard from a disabled tracer does nothing.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let wall_end_us = state.inner.clock.now_us();
        let record = TraceRecord::Span(SpanRecord {
            track: state.inner.track,
            phase: state.phase,
            name: state.name,
            wall_start_us: state.wall_start_us,
            wall_dur_us: wall_end_us.saturating_sub(state.wall_start_us),
            sim_start: state.sim_start,
            sim_end: state.inner.sim.get(),
        });
        state.inner.buf.borrow_mut().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_true_noop() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let _span = tracer.span(Phase::Explore, "nope");
        tracer.event(|| unreachable!("payload closure must not run when disabled"));
        tracer.count("x", 1);
        tracer.set_sim_clock(99);
        drop(_span);
        let track = tracer.finish();
        assert!(track.records.is_empty());
        assert_eq!(track.dropped, 0);
    }

    #[test]
    fn spans_carry_wall_and_sim_timestamps() {
        let tracer = Tracer::new(&TraceConfig::on(), TraceClock::start(), 3);
        tracer.set_sim_clock(10);
        {
            let _span = tracer.span(Phase::Static, "extract");
            tracer.set_sim_clock(25);
        }
        let track = tracer.finish();
        assert_eq!(track.track, 3);
        let TraceRecord::Span(span) = &track.records[0] else { panic!("expected span") };
        assert_eq!(span.phase, Phase::Static);
        assert_eq!(span.name, "extract");
        assert_eq!(span.sim_start, 10);
        assert_eq!(span.sim_end, 25);
        assert!(span.wall_start_us <= span.wall_start_us + span.wall_dur_us);
    }

    #[test]
    fn counters_flush_at_finish() {
        let tracer = Tracer::new(&TraceConfig::on(), TraceClock::start(), 0);
        tracer.count("events", 2);
        tracer.count("events", 3);
        tracer.count("faults", 1);
        let track = tracer.finish();
        let counters: Vec<(&str, u64)> = track
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Counter(c) => Some((c.name.as_str(), c.value)),
                _ => None,
            })
            .collect();
        assert_eq!(counters, vec![("events", 5), ("faults", 1)]);
    }
}
