//! The bounded record buffer behind each [`crate::Tracer`].

use crate::model::TraceRecord;
use std::collections::VecDeque;

/// A fixed-capacity ring of [`TraceRecord`]s with oldest-dropped
/// overflow semantics: pushing into a full ring evicts the oldest record
/// and bumps the drop counter — it never reallocates past its capacity
/// and never panics.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` records. A zero capacity drops
    /// everything (every push counts as a drop).
    pub fn new(capacity: usize) -> Self {
        RingBuffer { capacity, records: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// Appends a record, evicting the oldest one when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held, oldest first.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records lost to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into `(records, dropped)`, oldest first.
    pub fn into_parts(self) -> (Vec<TraceRecord>, u64) {
        (self.records.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CounterRecord, TraceRecord};

    fn rec(i: u64) -> TraceRecord {
        TraceRecord::Counter(CounterRecord { track: 0, name: format!("c{i}"), value: i })
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = RingBuffer::new(4);
        for i in 0..10 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let (records, dropped) = ring.into_parts();
        assert_eq!(dropped, 6);
        // Oldest-dropped: the survivors are exactly the newest four.
        let names: Vec<&str> = records
            .iter()
            .map(|r| match r {
                TraceRecord::Counter(c) => c.name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["c6", "c7", "c8", "c9"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut ring = RingBuffer::new(0);
        for i in 0..3 {
            ring.push(rec(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 3);
    }
}
