//! The trace data model: phases, typed events, and the records a
//! [`crate::Tracer`] accumulates.

use serde::{Deserialize, Serialize};

/// Trace format version stamped into [`MetaRecord`]; bumped whenever a
/// record shape changes incompatibly.
pub const TRACE_VERSION: u64 = 1;

/// The pipeline phase a span belongs to.
///
/// The *top-level* phases — [`Phase::Decompile`], [`Phase::Static`],
/// [`Phase::Explore`] — partition an app's run: their durations are
/// disjoint and together cover (almost all of) the app span. The other
/// phases are nested detail: [`Phase::StaticPass`] spans live inside the
/// `Static` span, [`Phase::Case`] and [`Phase::Recovery`] inside
/// `Explore`, and [`Phase::App`] / [`Phase::Suite`] wrap whole runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// APK container unpack/decompile (`fd-apk`).
    Decompile,
    /// APK container pack (`fd-apk`).
    Pack,
    /// The whole static information extraction (`fd-static`).
    Static,
    /// One pass inside the static phase (AFTM init, dependency, …).
    StaticPass,
    /// The exploration loop of one app (`fragdroid::driver`).
    Explore,
    /// One executed test case inside the exploration loop.
    Case,
    /// Crash recovery (relaunch + path replay) inside the exploration.
    Recovery,
    /// One app's full run inside a suite (`fragdroid::suite`).
    App,
    /// A whole suite run.
    Suite,
    /// A benchmark harness section (`fd-bench`).
    Bench,
    /// A fuzz campaign or one of its mutant executions (`fd-fuzz`).
    Fuzz,
}

impl Phase {
    /// Stable lowercase name (Chrome `cat` field, summary keys).
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Decompile => "decompile",
            Phase::Pack => "pack",
            Phase::Static => "static",
            Phase::StaticPass => "static-pass",
            Phase::Explore => "explore",
            Phase::Case => "case",
            Phase::Recovery => "recovery",
            Phase::App => "app",
            Phase::Suite => "suite",
            Phase::Bench => "bench",
            Phase::Fuzz => "fuzz",
        }
    }

    /// Whether spans of this phase partition an app's run (see the type
    /// docs) — the phases whose totals should sum to the app wall time.
    pub fn is_top_level(&self) -> bool {
        matches!(self, Phase::Decompile | Phase::Pack | Phase::Static | Phase::Explore)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed point-in-time occurrence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// One UI event went through the device (op = launch/click/…).
    EventDispatched {
        /// The operation kind.
        op: String,
    },
    /// The device's fault plan injected a fault.
    FaultInjected {
        /// Human-readable fault kind (`drop-event`, `anr-delay 900t`, …).
        kind: String,
    },
    /// The supervisor retried an event after a transient device error.
    Retry {
        /// 1-based retry attempt for this event.
        attempt: u64,
    },
    /// The app force-closed.
    Crash {
        /// The foreground activity at crash time (may be empty).
        activity: String,
        /// The exception message / synthetic kill reason.
        reason: String,
    },
    /// The supervisor finished a crash-recovery attempt.
    Recovery {
        /// Whether the app was up again afterwards.
        recovered: bool,
    },
    /// A new AFTM transition was observed.
    TransitionDiscovered {
        /// Source node (activity or fragment class).
        from: String,
        /// Destination node.
        to: String,
    },
    /// An activity's interface was reached for the first time.
    NewActivity {
        /// The activity class.
        name: String,
    },
    /// A fragment was confirmed through the FragmentManager for the
    /// first time.
    NewFragment {
        /// The fragment class.
        name: String,
    },
    /// An input was rejected at the ingestion frontier (malformed
    /// container, unparsable smali, …) and quarantined instead of run.
    InputRejected {
        /// The typed decode/parse error, rendered.
        reason: String,
    },
    /// A fuzz mutant violated the panic-free invariant (the campaign
    /// writes a reproducer alongside).
    FuzzViolation {
        /// Which mutator/target produced the mutant.
        target: String,
        /// The campaign-local mutant index.
        case: u64,
    },
    /// One completed app's outcome was appended to the suite journal.
    CheckpointWrite {
        /// The app's input-order index in the corpus.
        index: u64,
    },
    /// A suite run resumed from a journal instead of starting cold.
    CheckpointResume {
        /// Completed apps restored from the journal (skipped this run).
        skipped: u64,
        /// Bytes of torn tail dropped while loading the journal.
        torn_tail_bytes: u64,
    },
    /// The flake-triage pass re-ran a failed app once.
    FlakeRetry {
        /// The retried app's package (or slot label).
        package: String,
        /// 1-based retry attempt.
        attempt: u64,
        /// Whether this attempt passed (no panic/deadline/crash).
        passed: bool,
    },
    /// The device pool leased a (possibly fresh) device to a worker lane.
    DeviceLeased {
        /// The worker lane holding the lease.
        lane: u64,
        /// The lane's device generation (bumped per fresh device).
        generation: u64,
    },
    /// A device-infrastructure failure (agent death, protocol timeout) —
    /// counted in `SuiteMetrics::device_incidents`, never as an app crash.
    DeviceIncident {
        /// The typed device error, rendered.
        detail: String,
    },
    /// The pool retired a sick device after consecutive infra failures.
    DeviceRetired {
        /// The worker lane whose device was retired.
        lane: u64,
    },
    /// A shard's journal was folded into a merged suite result.
    ShardMerged {
        /// The shard's index within the split.
        shard: u64,
        /// Apps the shard contributed.
        apps: u64,
    },
    /// The serve loop accepted a job submission.
    JobSubmitted {
        /// The assigned job id.
        job: u64,
    },
    /// A serve worker finished a job (report ready or rejection filed).
    JobCompleted {
        /// The finished job id.
        job: u64,
        /// Whether the container was refused by the ingestion frontier.
        rejected: bool,
    },
    /// The serve listener accepted a socket session.
    ConnectionOpened {
        /// The server-assigned connection id.
        conn: u64,
    },
    /// A serve socket session ended (hangup, protocol error, idle
    /// timeout, or drain).
    ConnectionClosed {
        /// The server-assigned connection id.
        conn: u64,
    },
    /// A submission bounced off the full bounded queue (`Busy`).
    QueueSaturated {
        /// The refused job id.
        job: u64,
    },
    /// The server began its graceful drain: no new work, finish the
    /// queue, flush the journal.
    DrainStarted,
    /// Startup replayed the job journal of a previous (crashed or
    /// drained) server.
    JournalRecovered {
        /// Jobs restored — completed ones served from the journal,
        /// pending ones re-queued.
        jobs: u64,
    },
    /// The dispatch coordinator leased a shard to a worker endpoint.
    LeaseGranted {
        /// Shard index within the dispatched split.
        shard: u64,
        /// Worker endpoint index within the coordinator's roster.
        worker: u64,
        /// The lease's generation counter (monotonic per coordinator).
        generation: u64,
    },
    /// A lease expired or its worker failed; the shard returns to the
    /// pending queue.
    LeaseRevoked {
        /// Shard index within the dispatched split.
        shard: u64,
        /// Worker endpoint index the lease was revoked from.
        worker: u64,
        /// The revoked lease's generation counter.
        generation: u64,
    },
    /// A revoked shard was handed to a different (or revived) worker.
    ShardReassigned {
        /// Shard index within the dispatched split.
        shard: u64,
        /// Worker endpoint index that picked the shard back up.
        worker: u64,
    },
    /// A worker endpoint failed health probes repeatedly and was benched
    /// for a quarantine period.
    WorkerQuarantined {
        /// Worker endpoint index within the coordinator's roster.
        worker: u64,
    },
}

impl TraceEvent {
    /// Short stable name (Chrome event name, summary keys).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::EventDispatched { .. } => "event-dispatched",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::TransitionDiscovered { .. } => "transition",
            TraceEvent::NewActivity { .. } => "new-activity",
            TraceEvent::NewFragment { .. } => "new-fragment",
            TraceEvent::InputRejected { .. } => "input-rejected",
            TraceEvent::FuzzViolation { .. } => "fuzz-violation",
            TraceEvent::CheckpointWrite { .. } => "checkpoint-write",
            TraceEvent::CheckpointResume { .. } => "checkpoint-resume",
            TraceEvent::FlakeRetry { .. } => "flake-retry",
            TraceEvent::DeviceLeased { .. } => "device-leased",
            TraceEvent::DeviceIncident { .. } => "device-incident",
            TraceEvent::DeviceRetired { .. } => "device-retired",
            TraceEvent::ShardMerged { .. } => "shard-merged",
            TraceEvent::JobSubmitted { .. } => "job-submitted",
            TraceEvent::JobCompleted { .. } => "job-completed",
            TraceEvent::ConnectionOpened { .. } => "connection-opened",
            TraceEvent::ConnectionClosed { .. } => "connection-closed",
            TraceEvent::QueueSaturated { .. } => "queue-saturated",
            TraceEvent::DrainStarted => "drain-started",
            TraceEvent::JournalRecovered { .. } => "journal-recovered",
            TraceEvent::LeaseGranted { .. } => "lease-granted",
            TraceEvent::LeaseRevoked { .. } => "lease-revoked",
            TraceEvent::ShardReassigned { .. } => "shard-reassigned",
            TraceEvent::WorkerQuarantined { .. } => "worker-quarantined",
        }
    }
}

/// A completed span: enter/exit with wall *and* simulated timestamps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The track (worker lane) the span ran on.
    pub track: u64,
    /// The pipeline phase.
    pub phase: Phase,
    /// Span name (pass name, app package, test-case label, …).
    pub name: String,
    /// Wall-clock enter time, µs since the trace epoch.
    pub wall_start_us: u64,
    /// Wall-clock duration, µs.
    pub wall_dur_us: u64,
    /// Simulated device clock at enter, in ticks.
    pub sim_start: u64,
    /// Simulated device clock at exit, in ticks.
    pub sim_end: u64,
}

/// A typed instant event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The track (worker lane) the event fired on.
    pub track: u64,
    /// Wall-clock time, µs since the trace epoch.
    pub wall_us: u64,
    /// Simulated device clock, in ticks.
    pub sim: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// A named monotonic counter, flushed at drain time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// The track the counter was accumulated on.
    pub track: u64,
    /// Counter name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// Records lost to ring-buffer overflow on one track (oldest-dropped).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DroppedRecord {
    /// The overflowing track.
    pub track: u64,
    /// How many records were dropped.
    pub count: u64,
}

/// Trace-wide metadata (always the first JSONL line).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaRecord {
    /// Format version ([`TRACE_VERSION`]).
    pub version: u64,
    /// What produced the trace (`fragdroid corpus`, `fd-bench suite`, …).
    pub process: String,
}

/// One line of a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// Trace-wide metadata.
    Meta(MetaRecord),
    /// A completed span.
    Span(SpanRecord),
    /// A typed instant event.
    Event(EventRecord),
    /// A counter's final value.
    Counter(CounterRecord),
    /// Overflow accounting for one track.
    Dropped(DroppedRecord),
}

/// One worker's drained buffer: what [`crate::Tracer::finish`] returns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrackTrace {
    /// The track id the tracer ran as.
    pub track: u64,
    /// Records in emission order (spans appear at their *exit*).
    pub records: Vec<TraceRecord>,
    /// Records lost to ring overflow (oldest first).
    pub dropped: u64,
}

/// A whole collected trace: metadata plus every track's records.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Trace-wide metadata.
    pub meta: MetaRecord,
    /// All records, in absorption order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace for `process`.
    pub fn new(process: &str) -> Self {
        Trace {
            meta: MetaRecord { version: TRACE_VERSION, process: process.to_string() },
            records: Vec::new(),
        }
    }

    /// Appends one drained track, materializing its drop counter as a
    /// [`DroppedRecord`] when anything was lost.
    pub fn absorb(&mut self, track: TrackTrace) {
        if track.dropped > 0 {
            self.records.push(TraceRecord::Dropped(DroppedRecord {
                track: track.track,
                count: track.dropped,
            }));
        }
        self.records.extend(track.records);
    }

    /// Total records lost to ring overflow across all tracks.
    pub fn total_dropped(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Dropped(d) => Some(d.count),
                _ => None,
            })
            .sum()
    }

    /// Serializes to JSON Lines: the [`MetaRecord`] first, then one
    /// record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let meta = TraceRecord::Meta(self.meta.clone());
        for record in std::iter::once(&meta).chain(self.records.iter()) {
            match serde_json::to_string(record) {
                Ok(line) => {
                    out.push_str(&line);
                    out.push('\n');
                }
                Err(_) => unreachable!("trace records always serialize"),
            }
        }
        out
    }

    /// Parses a trace back from JSON Lines. The first `Meta` record (if
    /// any) becomes [`Trace::meta`]; a malformed line is an error.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut trace = Trace { meta: MetaRecord::default(), records: Vec::new() };
        let mut saw_meta = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: TraceRecord = serde_json::from_str(line)
                .map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
            match record {
                TraceRecord::Meta(meta) if !saw_meta => {
                    trace.meta = meta;
                    saw_meta = true;
                }
                other => trace.records.push(other),
            }
        }
        Ok(trace)
    }
}
