//! Property tests: the binary container round-trips arbitrary generated
//! apps, and corruption never panics the decoder.

use bytes::Bytes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → decompile is the identity on generated apps of any shape.
    #[test]
    fn pack_decompile_roundtrip(seed in 0u64..1000, acts in 1usize..10, frags in 0usize..10) {
        let config = fd_appgen::random::GenConfig {
            activities: acts,
            fragments: frags,
            ..fd_appgen::random::GenConfig::default()
        };
        let gen = fd_appgen::random::generate("prop.app", &config, seed);
        let bytes = fd_apk::pack(&gen.app);
        let back = fd_apk::decompile(&bytes).expect("well-formed container");
        prop_assert_eq!(back, gen.app);
    }

    /// Truncating a valid container anywhere yields an error, never a panic.
    #[test]
    fn truncation_never_panics(seed in 0u64..50, cut_ratio in 0.0f64..1.0) {
        let gen = fd_appgen::random::generate(
            "prop.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let full = fd_apk::pack(&gen.app);
        let cut = ((full.len() as f64) * cut_ratio) as usize;
        if cut < full.len() {
            let truncated = Bytes::copy_from_slice(&full[..cut]);
            prop_assert!(fd_apk::decompile(&truncated).is_err());
        }
    }

    /// Flipping one byte anywhere either round-trips to the same app (a
    /// byte in unused slack — impossible here, so in practice an error or
    /// a *different* app) or fails cleanly; it never panics.
    #[test]
    fn single_byte_corruption_never_panics(seed in 0u64..30, pos_ratio in 0.0f64..1.0) {
        let gen = fd_appgen::random::generate(
            "prop.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let mut raw = fd_apk::pack(&gen.app).to_vec();
        let pos = (((raw.len() - 1) as f64) * pos_ratio) as usize;
        raw[pos] ^= 0x5a;
        let _ = fd_apk::decompile(&Bytes::from(raw)); // must not panic
    }

    /// Arbitrary byte soup — with or without a plausible FAPK header in
    /// front — decodes or is rejected with a typed error; never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        with_header in any::<bool>(),
    ) {
        let mut raw = if with_header { b"FAPK\x00\x01\x00\x00".to_vec() } else { Vec::new() };
        raw.extend_from_slice(&bytes);
        let _ = fd_apk::decompile(&Bytes::from(raw)); // must not panic
    }

    /// Blowing up any section's length field is rejected with a typed
    /// error that carries the offset of the corrupted field itself.
    #[test]
    fn oversized_length_fields_are_typed_with_their_offset(seed in 0u64..30, section in 0usize..4) {
        let gen = fd_appgen::random::generate(
            "prop.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let mut raw = fd_apk::pack(&gen.app).to_vec();
        // Walk the 8-byte header and `section` length-prefixed payloads
        // to the length field under attack.
        let mut pos = 8;
        for _ in 0..section {
            let len =
                u32::from_be_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4 + len;
        }
        raw[pos..pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        match fd_apk::decompile(&Bytes::from(raw)) {
            Err(e) => prop_assert_eq!(e.offset(), Some(pos)),
            Ok(_) => prop_assert!(false, "a 4 GiB section cannot fit the stream"),
        }
    }
}
