//! Property tests: the binary container round-trips arbitrary generated
//! apps, and corruption never panics the decoder.

use bytes::Bytes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → decompile is the identity on generated apps of any shape.
    #[test]
    fn pack_decompile_roundtrip(seed in 0u64..1000, acts in 1usize..10, frags in 0usize..10) {
        let config = fd_appgen::random::GenConfig {
            activities: acts,
            fragments: frags,
            ..fd_appgen::random::GenConfig::default()
        };
        let gen = fd_appgen::random::generate("prop.app", &config, seed);
        let bytes = fd_apk::pack(&gen.app);
        let back = fd_apk::decompile(&bytes).expect("well-formed container");
        prop_assert_eq!(back, gen.app);
    }

    /// Truncating a valid container anywhere yields an error, never a panic.
    #[test]
    fn truncation_never_panics(seed in 0u64..50, cut_ratio in 0.0f64..1.0) {
        let gen = fd_appgen::random::generate(
            "prop.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let full = fd_apk::pack(&gen.app);
        let cut = ((full.len() as f64) * cut_ratio) as usize;
        if cut < full.len() {
            let truncated = Bytes::copy_from_slice(&full[..cut]);
            prop_assert!(fd_apk::decompile(&truncated).is_err());
        }
    }

    /// Flipping one byte anywhere either round-trips to the same app (a
    /// byte in unused slack — impossible here, so in practice an error or
    /// a *different* app) or fails cleanly; it never panics.
    #[test]
    fn single_byte_corruption_never_panics(seed in 0u64..30, pos_ratio in 0.0f64..1.0) {
        let gen = fd_appgen::random::generate(
            "prop.app",
            &fd_appgen::random::GenConfig::default(),
            seed,
        );
        let mut raw = fd_apk::pack(&gen.app).to_vec();
        let pos = (((raw.len() - 1) as f64) * pos_ratio) as usize;
        raw[pos] ^= 0x5a;
        let _ = fd_apk::decompile(&Bytes::from(raw)); // must not panic
    }
}
