//! Synthetic APK artifacts for the FragDroid reproduction.
//!
//! Real FragDroid consumes APK files: a binary container holding dex
//! bytecode, a binary `AndroidManifest.xml`, layout XML, and a resource
//! table. This crate provides the equivalent artifacts:
//!
//! * [`Manifest`] — the app's declared activities, intent filters and
//!   permissions (§IV-B of the paper resolves implicit intents against it,
//!   and FragDroid's "mandatory starting" rewrites it);
//! * [`Layout`] / [`Widget`] — inflatable widget trees with resource-IDs;
//! * [`ResourceTable`] — the numeric resource-ID assignment (`R.id.*`);
//! * [`AndroidApp`] — a whole app: manifest + [`fd_smali::ClassPool`] +
//!   layouts + resources + store metadata;
//! * [`container`] — a binary pack/unpack format standing in for the APK
//!   zip, including the "packed/encrypted" protection flag that forces the
//!   paper to exclude some Google-Play apps from its dataset;
//! * [`decompile`] — the Apktool + jd-core stage: unpack the container and
//!   re-parse the textual smali, yielding the decompiled form the static
//!   analyses run on.
//!
//! # Example
//!
//! ```
//! use fd_apk::{AndroidApp, Manifest, decompile};
//!
//! let app = AndroidApp::new(Manifest::new("com.example.demo"));
//! let bytes = fd_apk::container::pack(&app);
//! let back = decompile(&bytes).unwrap();
//! assert_eq!(back.manifest.package, "com.example.demo");
//! ```

pub mod app;
pub mod container;
pub mod corpus;
pub mod error;
pub mod layout;
pub mod manifest;
pub mod resources;
pub mod stats;
pub mod workspace;

pub use app::{AndroidApp, AppMeta};
pub use container::{
    decompile, decompile_traced, pack, pack_into, pack_traced, AppView, ContainerView,
};
pub use corpus::{CorpusError, CorpusManifest, CorpusReader, ShardReader, ShardWriter};
pub use error::{ApkError, CorruptCause};
pub use layout::{Layout, Widget, WidgetKind};
pub use manifest::{ActivityDecl, IntentFilter, Manifest};
pub use resources::ResourceTable;
pub use stats::{app_stats, AppStats};

/// The standard Android action for an app's main entry point.
pub const ACTION_MAIN: &str = "android.intent.action.MAIN";
/// The standard Android category marking the launcher activity.
pub const CATEGORY_LAUNCHER: &str = "android.intent.category.LAUNCHER";
