//! The binary APK container — the reproduction's stand-in for the APK zip.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic   4 bytes  "FAPK"
//! version u16      currently 1
//! flags   u16      bit 0: packer-protected
//! then 4 length-prefixed sections (u32 length + payload):
//!   1. manifest   JSON-encoded [`Manifest`]
//!   2. classes    UTF-8 smali text (all classes, printer output)
//!   3. layouts    JSON-encoded Vec<Layout>
//!   4. meta       JSON-encoded [`AppMeta`]
//! ```
//!
//! [`decompile`] is the Apktool + jd-core stage of the paper's pipeline:
//! it unpacks the container and re-parses the smali text, producing the
//! same [`AndroidApp`] the packer consumed (resources are re-interned,
//! matching `aapt`'s determinism). A container with the packer flag set
//! refuses to decompile with [`ApkError::Packed`], reproducing the apps
//! the paper had to exclude.

use crate::app::{AndroidApp, AppMeta};
use crate::error::ApkError;
use crate::layout::Layout;
use crate::manifest::Manifest;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fd_smali::{parser, printer, ClassPool};

const MAGIC: &[u8; 4] = b"FAPK";
const VERSION: u16 = 1;
const FLAG_PACKED: u16 = 0b1;

/// [`pack`] under a span on `tracer` ([`fd_trace::Phase::Pack`]).
pub fn pack_traced(app: &AndroidApp, tracer: &fd_trace::Tracer) -> Bytes {
    let _span = tracer.span(fd_trace::Phase::Pack, "pack");
    pack(app)
}

/// [`decompile`] under a span on `tracer` ([`fd_trace::Phase::Decompile`]).
pub fn decompile_traced(bytes: &Bytes, tracer: &fd_trace::Tracer) -> Result<AndroidApp, ApkError> {
    let _span = tracer.span(fd_trace::Phase::Decompile, "decompile");
    decompile(bytes)
}

/// Serializes an app into the binary container.
pub fn pack(app: &AndroidApp) -> Bytes {
    let manifest = serde_json::to_vec(&app.manifest).expect("manifest serializes");
    let smali: String = app.classes.iter().map(printer::print_class).collect::<Vec<_>>().join("\n");
    let layouts: Vec<&Layout> = app.layouts.values().collect();
    let layouts = serde_json::to_vec(&layouts).expect("layouts serialize");
    let meta = serde_json::to_vec(&app.meta).expect("meta serializes");

    let mut buf =
        BytesMut::with_capacity(16 + manifest.len() + smali.len() + layouts.len() + meta.len());
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u16(if app.meta.packed { FLAG_PACKED } else { 0 });
    for section in [&manifest[..], smali.as_bytes(), &layouts[..], &meta[..]] {
        buf.put_u32(section.len() as u32);
        if app.meta.packed {
            // Packer protection: scramble payloads so that even a reader
            // that ignores the flag cannot recover the contents.
            buf.extend(section.iter().map(|b| b ^ 0xa5));
        } else {
            buf.put_slice(section);
        }
    }
    buf.freeze()
}

fn take_section(buf: &mut Bytes) -> Result<Bytes, ApkError> {
    if buf.remaining() < 4 {
        return Err(ApkError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(ApkError::Truncated);
    }
    Ok(buf.split_to(len))
}

/// Unpacks and decompiles a container back into an [`AndroidApp`].
///
/// This is the reproduction's Apktool + jd-core stage: the classes section
/// is genuine text that is re-parsed by [`fd_smali::parser`].
pub fn decompile(bytes: &Bytes) -> Result<AndroidApp, ApkError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 8 {
        return Err(ApkError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ApkError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(ApkError::UnsupportedVersion(version));
    }
    let flags = buf.get_u16();
    if flags & FLAG_PACKED != 0 {
        return Err(ApkError::Packed);
    }

    let manifest_raw = take_section(&mut buf)?;
    let smali_raw = take_section(&mut buf)?;
    let layouts_raw = take_section(&mut buf)?;
    let meta_raw = take_section(&mut buf)?;

    let manifest: Manifest = serde_json::from_slice(&manifest_raw)
        .map_err(|e| ApkError::Corrupt(format!("manifest: {e}")))?;
    let smali_text = std::str::from_utf8(&smali_raw)
        .map_err(|e| ApkError::Corrupt(format!("classes not UTF-8: {e}")))?;
    let classes: ClassPool = parser::parse_classes(smali_text)?.into_iter().collect();
    let layouts: Vec<Layout> = serde_json::from_slice(&layouts_raw)
        .map_err(|e| ApkError::Corrupt(format!("layouts: {e}")))?;
    let meta: AppMeta =
        serde_json::from_slice(&meta_raw).map_err(|e| ApkError::Corrupt(format!("meta: {e}")))?;

    let mut app = AndroidApp {
        manifest,
        classes,
        layouts: layouts.into_iter().map(|l| (l.name.clone(), l)).collect(),
        resources: crate::ResourceTable::new(),
        meta,
    };
    app.finalize_resources();
    Ok(app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Widget, WidgetKind};
    use crate::manifest::ActivityDecl;
    use fd_smali::{ClassDef, MethodDef, ResRef, Stmt};

    fn sample_app(packed: bool) -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("com.example")
                .with_activity(ActivityDecl::new("com.example.Main").launcher()),
        )
        .with_layout(Layout::new(
            "main",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go")),
        ));
        app.classes.insert(
            ClassDef::new("com.example.Main", fd_smali::well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))),
            ),
        );
        app.meta = AppMeta { category: "Tools".into(), downloads: 50_000, packed };
        app.finalize_resources();
        app
    }

    #[test]
    fn pack_decompile_roundtrip() {
        let app = sample_app(false);
        let bytes = pack(&app);
        let back = decompile(&bytes).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn packed_app_refuses_decompilation() {
        let app = sample_app(true);
        let bytes = pack(&app);
        assert_eq!(decompile(&bytes), Err(ApkError::Packed));
    }

    #[test]
    fn bad_magic_detected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[0] = b'Z';
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::BadMagic));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let full = pack(&sample_app(false));
        for cut in [0, 3, 7, 9, full.len() - 1] {
            let raw = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                matches!(decompile(&raw), Err(ApkError::Truncated) | Err(ApkError::Corrupt(_))),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[5] = 9; // version low byte
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::UnsupportedVersion(9)));
    }

    #[test]
    fn corrupt_manifest_reported() {
        let app = sample_app(false);
        let mut raw = pack(&app).to_vec();
        // Flip a byte inside the manifest JSON payload (section starts at 12).
        raw[13] ^= 0xff;
        assert!(matches!(decompile(&Bytes::from(raw)), Err(ApkError::Corrupt(_))));
    }
}
