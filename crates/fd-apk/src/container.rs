//! The binary APK container — the reproduction's stand-in for the APK zip.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic   4 bytes  "FAPK"
//! version u16      currently 1
//! flags   u16      bit 0: packer-protected
//! then 4 length-prefixed sections (u32 length + payload):
//!   1. manifest   JSON-encoded [`Manifest`]
//!   2. classes    UTF-8 smali text (all classes, printer output)
//!   3. layouts    JSON-encoded Vec<Layout>
//!   4. meta       JSON-encoded [`AppMeta`]
//! ```
//!
//! [`decompile`] is the Apktool + jd-core stage of the paper's pipeline:
//! it unpacks the container and re-parses the smali text, producing the
//! same [`AndroidApp`] the packer consumed (resources are re-interned,
//! matching `aapt`'s determinism). A container with the packer flag set
//! refuses to decompile with [`ApkError::Packed`], reproducing the apps
//! the paper had to exclude.

use crate::app::{AndroidApp, AppMeta};
use crate::error::{ApkError, CorruptCause};
use crate::layout::Layout;
use crate::manifest::Manifest;
use bytes::{BufMut, Bytes, BytesMut};
use fd_smali::{parser, printer, ClassDef, ClassPool};

const MAGIC: &[u8; 4] = b"FAPK";
const VERSION: u16 = 1;
const FLAG_PACKED: u16 = 0b1;

/// [`pack`] under a span on `tracer` ([`fd_trace::Phase::Pack`]).
pub fn pack_traced(app: &AndroidApp, tracer: &fd_trace::Tracer) -> Bytes {
    let _span = tracer.span(fd_trace::Phase::Pack, "pack");
    pack(app)
}

/// [`decompile`] under a span on `tracer` ([`fd_trace::Phase::Decompile`]).
pub fn decompile_traced(bytes: &Bytes, tracer: &fd_trace::Tracer) -> Result<AndroidApp, ApkError> {
    let _span = tracer.span(fd_trace::Phase::Decompile, "decompile");
    decompile(bytes)
}

/// Serializes an app into the binary container.
pub fn pack(app: &AndroidApp) -> Bytes {
    let mut buf = BytesMut::new();
    pack_into(app, &mut buf);
    buf.freeze()
}

/// [`pack`] into a caller-owned buffer (cleared first), so loops packing
/// or digesting a whole corpus reuse one container allocation instead of
/// one per app. The bytes written are exactly [`pack`]'s.
pub fn pack_into(app: &AndroidApp, buf: &mut BytesMut) {
    buf.clear();
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    let packed = app.meta.packed;
    buf.put_u16(if packed { FLAG_PACKED } else { 0 });

    // Sections render one at a time into a single scratch buffer and are
    // framed straight into `buf` — one temporary for the whole container
    // instead of one owned buffer per section.
    let mut scratch = String::new();

    serde::Serialize::write_json(&app.manifest, &mut scratch);
    frame_section(buf, scratch.as_bytes(), packed);

    scratch.clear();
    for (i, class) in app.classes.iter().enumerate() {
        if i > 0 {
            // `join("\n")` heritage: a blank separator line between
            // classes (each class already ends with its own newline).
            scratch.push('\n');
        }
        printer::print_class_into(&mut scratch, class);
    }
    frame_section(buf, scratch.as_bytes(), packed);

    scratch.clear();
    let layouts: Vec<&Layout> = app.layouts.values().collect();
    serde::Serialize::write_json(&layouts, &mut scratch);
    frame_section(buf, scratch.as_bytes(), packed);

    scratch.clear();
    serde::Serialize::write_json(&app.meta, &mut scratch);
    frame_section(buf, scratch.as_bytes(), packed);
}

/// Appends one length-prefixed section.
fn frame_section(buf: &mut BytesMut, section: &[u8], scramble: bool) {
    buf.put_u32(section.len() as u32);
    if scramble {
        // Packer protection: scramble payloads so that even a reader
        // that ignores the flag cannot recover the contents.
        buf.extend(section.iter().map(|b| b ^ 0xa5));
    } else {
        buf.put_slice(section);
    }
}

/// Bounds-checked reader over the container bytes. Every read either
/// succeeds or returns a typed [`ApkError`] carrying the byte offset it
/// failed at; nothing in the decode path can index past the end.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` bytes, or reports exactly how short the stream is.
    fn take(&mut self, n: usize) -> Result<&'a [u8], ApkError> {
        if self.remaining() < n {
            return Err(ApkError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, ApkError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ApkError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one `u32 length + payload` section, validating the length
    /// field against what actually remains.
    fn section(&mut self, name: &'static str) -> Result<&'a [u8], ApkError> {
        let field_offset = self.pos;
        let declared = self.u32()? as usize;
        if declared > self.remaining() {
            return Err(ApkError::BadLengthField {
                section: name,
                offset: field_offset,
                declared,
                available: self.remaining(),
            });
        }
        self.take(declared)
    }
}

/// A zero-copy view of a validated container: the four section payloads
/// as borrowed slices into the input buffer.
///
/// [`ContainerView::parse`] checks the envelope — magic, version, packer
/// flag, section framing, trailing bytes — without touching the payload
/// contents; [`ContainerView::decode`] then parses every section into an
/// [`AppView`]. Nothing is copied out of the buffer: the section
/// accessors return `&'a [u8]`/`&'a str` slices, and the parsers work
/// directly on them. [`decompile`] wraps the pair for callers that want
/// the owned, indexed [`AndroidApp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainerView<'a> {
    manifest: &'a [u8],
    classes: &'a [u8],
    layouts: &'a [u8],
    meta: &'a [u8],
}

impl<'a> ContainerView<'a> {
    /// Validates the container envelope and locates the four sections.
    ///
    /// Error precedence matches the historical `decompile` exactly:
    /// magic, then version, then the packer flag, then each section's
    /// framing in order, then trailing bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ApkError> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take(4)?;
        if magic != MAGIC {
            return Err(ApkError::BadMagic);
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(ApkError::UnsupportedVersion(version));
        }
        let flags = cur.u16()?;
        if flags & FLAG_PACKED != 0 {
            return Err(ApkError::Packed);
        }

        let manifest = cur.section("manifest")?;
        let classes = cur.section("classes")?;
        let layouts = cur.section("layouts")?;
        let meta = cur.section("meta")?;
        if cur.remaining() > 0 {
            return Err(ApkError::Corrupt {
                section: "meta",
                cause: CorruptCause::TrailingBytes { count: cur.remaining() },
            });
        }
        Ok(ContainerView { manifest, classes, layouts, meta })
    }

    /// The raw manifest JSON payload.
    pub fn manifest_bytes(&self) -> &'a [u8] {
        self.manifest
    }

    /// The raw classes payload (UTF-8 smali text when well-formed).
    pub fn classes_bytes(&self) -> &'a [u8] {
        self.classes
    }

    /// The raw layouts JSON payload.
    pub fn layouts_bytes(&self) -> &'a [u8] {
        self.layouts
    }

    /// The raw meta JSON payload.
    pub fn meta_bytes(&self) -> &'a [u8] {
        self.meta
    }

    /// The classes section as text, validating UTF-8.
    pub fn classes_str(&self) -> Result<&'a str, ApkError> {
        std::str::from_utf8(self.classes)
            .map_err(|e| ApkError::Corrupt { section: "classes", cause: CorruptCause::Utf8(e) })
    }

    /// Parses every section, in the same order (and with the same error
    /// precedence) as the historical `decompile`: manifest JSON, classes
    /// UTF-8, smali, layouts JSON, meta JSON.
    pub fn decode(&self) -> Result<AppView<'a>, ApkError> {
        let manifest: Manifest = serde_json::from_slice(self.manifest)
            .map_err(|e| ApkError::Corrupt { section: "manifest", cause: CorruptCause::Json(e) })?;
        let classes_text = self.classes_str()?;
        let classes = parser::parse_classes(classes_text)?;
        let layouts: Vec<Layout> = serde_json::from_slice(self.layouts)
            .map_err(|e| ApkError::Corrupt { section: "layouts", cause: CorruptCause::Json(e) })?;
        let meta: AppMeta = serde_json::from_slice(self.meta)
            .map_err(|e| ApkError::Corrupt { section: "meta", cause: CorruptCause::Json(e) })?;
        Ok(AppView { manifest, classes, classes_text, layouts, meta })
    }
}

/// A fully decoded container, before owned indexing: classes as the
/// parsed list (names interned, not yet a [`ClassPool`]), layouts in
/// section order (not yet keyed by name), and no resource table. This is
/// everything decoding proper has to do; [`AppView::into_app`] adds the
/// indexes for callers that explore the app.
#[derive(Clone, Debug, PartialEq)]
pub struct AppView<'a> {
    /// The manifest.
    pub manifest: Manifest,
    /// All parsed classes, in section order.
    pub classes: Vec<ClassDef>,
    /// The classes section text the classes were parsed from.
    pub classes_text: &'a str,
    /// All layouts, in section order.
    pub layouts: Vec<Layout>,
    /// Store metadata.
    pub meta: AppMeta,
}

impl AppView<'_> {
    /// Builds the owned, indexed [`AndroidApp`]: class pool, layout map,
    /// and the re-interned resource table (matching `aapt` determinism).
    pub fn into_app(self) -> AndroidApp {
        let classes: ClassPool = self.classes.into_iter().collect();
        let mut app = AndroidApp {
            manifest: self.manifest,
            classes,
            layouts: self.layouts.into_iter().map(|l| (l.name.clone(), l)).collect(),
            resources: crate::ResourceTable::new(),
            meta: self.meta,
        };
        app.finalize_resources();
        app
    }
}

/// Unpacks and decompiles a container back into an [`AndroidApp`].
///
/// This is the reproduction's Apktool + jd-core stage: the classes section
/// is genuine text that is re-parsed by [`fd_smali::parser`]. The decode
/// path is total: any input — truncated, bit-flipped, length-corrupted —
/// yields `Ok` or a typed [`ApkError`], never a panic (property-tested in
/// `tests/container_prop.rs` and fuzzed by `fd-fuzz`).
///
/// Thin wrapper over the borrowed path:
/// [`ContainerView::parse`] → [`ContainerView::decode`] →
/// [`AppView::into_app`].
pub fn decompile(bytes: &Bytes) -> Result<AndroidApp, ApkError> {
    Ok(ContainerView::parse(bytes)?.decode()?.into_app())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Widget, WidgetKind};
    use crate::manifest::ActivityDecl;
    use fd_smali::{ClassDef, MethodDef, ResRef, Stmt};

    fn sample_app(packed: bool) -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("com.example")
                .with_activity(ActivityDecl::new("com.example.Main").launcher()),
        )
        .with_layout(Layout::new(
            "main",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go")),
        ));
        app.classes.insert(
            ClassDef::new("com.example.Main", fd_smali::well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))),
            ),
        );
        app.meta = AppMeta { category: "Tools".into(), downloads: 50_000, packed };
        app.finalize_resources();
        app
    }

    #[test]
    fn pack_decompile_roundtrip() {
        let app = sample_app(false);
        let bytes = pack(&app);
        let back = decompile(&bytes).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn packed_app_refuses_decompilation() {
        let app = sample_app(true);
        let bytes = pack(&app);
        assert_eq!(decompile(&bytes), Err(ApkError::Packed));
    }

    #[test]
    fn bad_magic_detected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[0] = b'Z';
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::BadMagic));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let full = pack(&sample_app(false));
        for cut in 0..full.len() {
            let raw = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                matches!(
                    decompile(&raw),
                    Err(ApkError::Truncated { .. })
                        | Err(ApkError::BadLengthField { .. })
                        | Err(ApkError::Corrupt { .. })
                        | Err(ApkError::BadMagic)
                ),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn truncation_errors_carry_offsets() {
        let full = pack(&sample_app(false));
        // Cut inside the fixed header: a Truncated error at offset 0.
        match decompile(&Bytes::copy_from_slice(&full[..3])) {
            Err(ApkError::Truncated { offset: 0, needed: 4, available: 3 }) => {}
            other => panic!("expected header truncation, got {other:?}"),
        }
        // Cut inside the first length field (header is 8 bytes).
        match decompile(&Bytes::copy_from_slice(&full[..9])) {
            Err(ApkError::Truncated { offset: 8, needed: 4, available: 1 }) => {}
            other => panic!("expected length-field truncation, got {other:?}"),
        }
        // Cut inside the first payload: the length field is intact but
        // over-declares, reported against the manifest section.
        match decompile(&Bytes::copy_from_slice(&full[..14])) {
            Err(ApkError::BadLengthField {
                section: "manifest", offset: 8, available: 2, ..
            }) => {}
            other => panic!("expected manifest length error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_per_section() {
        // Corrupting each section's length field to u32::MAX reports that
        // section by name with the field's own offset.
        let full = pack(&sample_app(false)).to_vec();
        let mut field_offset = 8;
        for section in ["manifest", "classes", "layouts", "meta"] {
            let declared =
                u32::from_be_bytes(full[field_offset..field_offset + 4].try_into().unwrap())
                    as usize;
            let mut raw = full.clone();
            raw[field_offset..field_offset + 4].copy_from_slice(&u32::MAX.to_be_bytes());
            match decompile(&Bytes::from(raw)) {
                Err(ApkError::BadLengthField { section: s, offset, .. }) => {
                    assert_eq!(s, section);
                    assert_eq!(offset, field_offset);
                }
                other => panic!("expected {section} length error, got {other:?}"),
            }
            field_offset += 4 + declared;
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw.extend_from_slice(b"junk");
        match decompile(&Bytes::from(raw)) {
            Err(ApkError::Corrupt {
                section: "meta",
                cause: CorruptCause::TrailingBytes { count: 4 },
            }) => {}
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
    }

    #[test]
    fn view_sections_are_borrowed_slices() {
        let app = sample_app(false);
        let bytes = pack(&app);
        let view = ContainerView::parse(&bytes).unwrap();
        // Every accessor points into the original buffer — zero copies.
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        for section in
            [view.manifest_bytes(), view.classes_bytes(), view.layouts_bytes(), view.meta_bytes()]
        {
            assert!(range.contains(&(section.as_ptr() as usize)));
        }
        assert_eq!(view.classes_str().unwrap().as_bytes(), view.classes_bytes());
    }

    #[test]
    fn view_decode_matches_decompile() {
        let app = sample_app(false);
        let bytes = pack(&app);
        let view = ContainerView::parse(&bytes).unwrap().decode().unwrap();
        assert_eq!(view.clone().into_app(), decompile(&bytes).unwrap());
        assert_eq!(view.manifest, app.manifest);
        assert_eq!(view.meta, app.meta);
    }

    #[test]
    fn future_version_rejected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[5] = 9; // version low byte
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::UnsupportedVersion(9)));
    }

    #[test]
    fn corrupt_manifest_reported() {
        let app = sample_app(false);
        let mut raw = pack(&app).to_vec();
        // Flip a byte inside the manifest JSON payload (section starts at 12).
        raw[13] ^= 0xff;
        assert!(matches!(
            decompile(&Bytes::from(raw)),
            Err(ApkError::Corrupt { section: "manifest", .. })
        ));
    }
}
