//! The binary APK container — the reproduction's stand-in for the APK zip.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic   4 bytes  "FAPK"
//! version u16      currently 1
//! flags   u16      bit 0: packer-protected
//! then 4 length-prefixed sections (u32 length + payload):
//!   1. manifest   JSON-encoded [`Manifest`]
//!   2. classes    UTF-8 smali text (all classes, printer output)
//!   3. layouts    JSON-encoded Vec<Layout>
//!   4. meta       JSON-encoded [`AppMeta`]
//! ```
//!
//! [`decompile`] is the Apktool + jd-core stage of the paper's pipeline:
//! it unpacks the container and re-parses the smali text, producing the
//! same [`AndroidApp`] the packer consumed (resources are re-interned,
//! matching `aapt`'s determinism). A container with the packer flag set
//! refuses to decompile with [`ApkError::Packed`], reproducing the apps
//! the paper had to exclude.

use crate::app::{AndroidApp, AppMeta};
use crate::error::ApkError;
use crate::layout::Layout;
use crate::manifest::Manifest;
use bytes::{BufMut, Bytes, BytesMut};
use fd_smali::{parser, printer, ClassPool};

const MAGIC: &[u8; 4] = b"FAPK";
const VERSION: u16 = 1;
const FLAG_PACKED: u16 = 0b1;

/// [`pack`] under a span on `tracer` ([`fd_trace::Phase::Pack`]).
pub fn pack_traced(app: &AndroidApp, tracer: &fd_trace::Tracer) -> Bytes {
    let _span = tracer.span(fd_trace::Phase::Pack, "pack");
    pack(app)
}

/// [`decompile`] under a span on `tracer` ([`fd_trace::Phase::Decompile`]).
pub fn decompile_traced(bytes: &Bytes, tracer: &fd_trace::Tracer) -> Result<AndroidApp, ApkError> {
    let _span = tracer.span(fd_trace::Phase::Decompile, "decompile");
    decompile(bytes)
}

/// Serializes an app into the binary container.
pub fn pack(app: &AndroidApp) -> Bytes {
    let manifest = serde_json::to_vec(&app.manifest).expect("manifest serializes");
    let smali: String = app.classes.iter().map(printer::print_class).collect::<Vec<_>>().join("\n");
    let layouts: Vec<&Layout> = app.layouts.values().collect();
    let layouts = serde_json::to_vec(&layouts).expect("layouts serialize");
    let meta = serde_json::to_vec(&app.meta).expect("meta serializes");

    let mut buf =
        BytesMut::with_capacity(16 + manifest.len() + smali.len() + layouts.len() + meta.len());
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u16(if app.meta.packed { FLAG_PACKED } else { 0 });
    for section in [&manifest[..], smali.as_bytes(), &layouts[..], &meta[..]] {
        buf.put_u32(section.len() as u32);
        if app.meta.packed {
            // Packer protection: scramble payloads so that even a reader
            // that ignores the flag cannot recover the contents.
            buf.extend(section.iter().map(|b| b ^ 0xa5));
        } else {
            buf.put_slice(section);
        }
    }
    buf.freeze()
}

/// Bounds-checked reader over the container bytes. Every read either
/// succeeds or returns a typed [`ApkError`] carrying the byte offset it
/// failed at; nothing in the decode path can index past the end.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` bytes, or reports exactly how short the stream is.
    fn take(&mut self, n: usize) -> Result<&'a [u8], ApkError> {
        if self.remaining() < n {
            return Err(ApkError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, ApkError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ApkError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one `u32 length + payload` section, validating the length
    /// field against what actually remains.
    fn section(&mut self, name: &'static str) -> Result<&'a [u8], ApkError> {
        let field_offset = self.pos;
        let declared = self.u32()? as usize;
        if declared > self.remaining() {
            return Err(ApkError::BadLengthField {
                section: name,
                offset: field_offset,
                declared,
                available: self.remaining(),
            });
        }
        self.take(declared)
    }
}

/// Unpacks and decompiles a container back into an [`AndroidApp`].
///
/// This is the reproduction's Apktool + jd-core stage: the classes section
/// is genuine text that is re-parsed by [`fd_smali::parser`]. The decode
/// path is total: any input — truncated, bit-flipped, length-corrupted —
/// yields `Ok` or a typed [`ApkError`], never a panic (property-tested in
/// `tests/container_prop.rs` and fuzzed by `fd-fuzz`).
pub fn decompile(bytes: &Bytes) -> Result<AndroidApp, ApkError> {
    let mut cur = Cursor::new(&bytes[..]);
    let magic = cur.take(4)?;
    if magic != MAGIC {
        return Err(ApkError::BadMagic);
    }
    let version = cur.u16()?;
    if version != VERSION {
        return Err(ApkError::UnsupportedVersion(version));
    }
    let flags = cur.u16()?;
    if flags & FLAG_PACKED != 0 {
        return Err(ApkError::Packed);
    }

    let manifest_raw = cur.section("manifest")?;
    let smali_raw = cur.section("classes")?;
    let layouts_raw = cur.section("layouts")?;
    let meta_raw = cur.section("meta")?;
    if cur.remaining() > 0 {
        return Err(ApkError::corrupt(
            "meta",
            format!("{} trailing bytes after the last section", cur.remaining()),
        ));
    }

    let manifest: Manifest = serde_json::from_slice(manifest_raw)
        .map_err(|e| ApkError::corrupt("manifest", e.to_string()))?;
    let smali_text = std::str::from_utf8(smali_raw)
        .map_err(|e| ApkError::corrupt("classes", format!("not UTF-8: {e}")))?;
    let classes: ClassPool = parser::parse_classes(smali_text)?.into_iter().collect();
    let layouts: Vec<Layout> = serde_json::from_slice(layouts_raw)
        .map_err(|e| ApkError::corrupt("layouts", e.to_string()))?;
    let meta: AppMeta =
        serde_json::from_slice(meta_raw).map_err(|e| ApkError::corrupt("meta", e.to_string()))?;

    let mut app = AndroidApp {
        manifest,
        classes,
        layouts: layouts.into_iter().map(|l| (l.name.clone(), l)).collect(),
        resources: crate::ResourceTable::new(),
        meta,
    };
    app.finalize_resources();
    Ok(app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Widget, WidgetKind};
    use crate::manifest::ActivityDecl;
    use fd_smali::{ClassDef, MethodDef, ResRef, Stmt};

    fn sample_app(packed: bool) -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("com.example")
                .with_activity(ActivityDecl::new("com.example.Main").launcher()),
        )
        .with_layout(Layout::new(
            "main",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go")),
        ));
        app.classes.insert(
            ClassDef::new("com.example.Main", fd_smali::well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))),
            ),
        );
        app.meta = AppMeta { category: "Tools".into(), downloads: 50_000, packed };
        app.finalize_resources();
        app
    }

    #[test]
    fn pack_decompile_roundtrip() {
        let app = sample_app(false);
        let bytes = pack(&app);
        let back = decompile(&bytes).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn packed_app_refuses_decompilation() {
        let app = sample_app(true);
        let bytes = pack(&app);
        assert_eq!(decompile(&bytes), Err(ApkError::Packed));
    }

    #[test]
    fn bad_magic_detected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[0] = b'Z';
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::BadMagic));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let full = pack(&sample_app(false));
        for cut in 0..full.len() {
            let raw = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                matches!(
                    decompile(&raw),
                    Err(ApkError::Truncated { .. })
                        | Err(ApkError::BadLengthField { .. })
                        | Err(ApkError::Corrupt { .. })
                        | Err(ApkError::BadMagic)
                ),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn truncation_errors_carry_offsets() {
        let full = pack(&sample_app(false));
        // Cut inside the fixed header: a Truncated error at offset 0.
        match decompile(&Bytes::copy_from_slice(&full[..3])) {
            Err(ApkError::Truncated { offset: 0, needed: 4, available: 3 }) => {}
            other => panic!("expected header truncation, got {other:?}"),
        }
        // Cut inside the first length field (header is 8 bytes).
        match decompile(&Bytes::copy_from_slice(&full[..9])) {
            Err(ApkError::Truncated { offset: 8, needed: 4, available: 1 }) => {}
            other => panic!("expected length-field truncation, got {other:?}"),
        }
        // Cut inside the first payload: the length field is intact but
        // over-declares, reported against the manifest section.
        match decompile(&Bytes::copy_from_slice(&full[..14])) {
            Err(ApkError::BadLengthField {
                section: "manifest", offset: 8, available: 2, ..
            }) => {}
            other => panic!("expected manifest length error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_per_section() {
        // Corrupting each section's length field to u32::MAX reports that
        // section by name with the field's own offset.
        let full = pack(&sample_app(false)).to_vec();
        let mut field_offset = 8;
        for section in ["manifest", "classes", "layouts", "meta"] {
            let declared =
                u32::from_be_bytes(full[field_offset..field_offset + 4].try_into().unwrap())
                    as usize;
            let mut raw = full.clone();
            raw[field_offset..field_offset + 4].copy_from_slice(&u32::MAX.to_be_bytes());
            match decompile(&Bytes::from(raw)) {
                Err(ApkError::BadLengthField { section: s, offset, .. }) => {
                    assert_eq!(s, section);
                    assert_eq!(offset, field_offset);
                }
                other => panic!("expected {section} length error, got {other:?}"),
            }
            field_offset += 4 + declared;
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw.extend_from_slice(b"junk");
        match decompile(&Bytes::from(raw)) {
            Err(ApkError::Corrupt { section: "meta", message }) => {
                assert!(message.contains("trailing"), "got: {message}")
            }
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut raw = pack(&sample_app(false)).to_vec();
        raw[5] = 9; // version low byte
        assert_eq!(decompile(&Bytes::from(raw)), Err(ApkError::UnsupportedVersion(9)));
    }

    #[test]
    fn corrupt_manifest_reported() {
        let app = sample_app(false);
        let mut raw = pack(&app).to_vec();
        // Flip a byte inside the manifest JSON payload (section starts at 12).
        raw[13] ^= 0xff;
        assert!(matches!(
            decompile(&Bytes::from(raw)),
            Err(ApkError::Corrupt { section: "manifest", .. })
        ));
    }
}
