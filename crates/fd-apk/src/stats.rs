//! App-size statistics — the numbers `fragdroid info` and the corpus
//! study report about each app's code and UI volume.

use crate::app::AndroidApp;
use fd_smali::{visit, Stmt};
use serde::{Deserialize, Serialize};

/// Code and UI volume of one app.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppStats {
    /// Classes in the pool.
    pub classes: usize,
    /// Activity subclasses among them.
    pub activity_classes: usize,
    /// Fragment subclasses among them.
    pub fragment_classes: usize,
    /// Methods across all classes.
    pub methods: usize,
    /// Statements across all method bodies (including `If` arms).
    pub statements: usize,
    /// Sensitive-API call sites in code.
    pub sensitive_call_sites: usize,
    /// Layout files.
    pub layouts: usize,
    /// Widgets across all layouts.
    pub widgets: usize,
    /// Widgets that accept clicks.
    pub clickable_widgets: usize,
    /// Interned resources.
    pub resources: usize,
}

/// Computes the statistics for one app.
pub fn app_stats(app: &AndroidApp) -> AppStats {
    let mut s = AppStats {
        classes: app.classes.len(),
        layouts: app.layouts.len(),
        resources: app.resources.len(),
        ..AppStats::default()
    };
    for class in app.classes.iter() {
        if app.classes.is_activity_class(class.name.as_str()) {
            s.activity_classes += 1;
        }
        if app.classes.is_fragment_class(class.name.as_str()) {
            s.fragment_classes += 1;
        }
        s.methods += class.methods.len();
        visit::walk_class(class, &mut |stmt| {
            s.statements += 1;
            if matches!(stmt, Stmt::InvokeApi { .. }) {
                s.sensitive_call_sites += 1;
            }
        });
    }
    for layout in app.layouts.values() {
        for widget in layout.root.iter() {
            s.widgets += 1;
            if widget.clickable {
                s.clickable_widgets += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Layout, Widget, WidgetKind};
    use crate::manifest::{ActivityDecl, Manifest};
    use fd_smali::{well_known, ClassDef, MethodDef, ResRef};

    #[test]
    fn counts_every_dimension() {
        let mut app = AndroidApp::new(
            Manifest::new("st").with_activity(ActivityDecl::new("st.Main").launcher()),
        );
        app.layouts.insert(
            "m".into(),
            Layout::new(
                "m",
                Widget::new(WidgetKind::Group)
                    .with_child(Widget::new(WidgetKind::Button).with_id("b"))
                    .with_child(Widget::new(WidgetKind::TextView)),
            ),
        );
        app.classes.insert(
            ClassDef::new("st.Main", well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate")
                    .push(Stmt::SetContentView(ResRef::layout("m")))
                    .push(Stmt::InvokeApi { group: "ipc".into(), name: "Binder".into() })
                    .push(Stmt::if_then(
                        fd_smali::Cond::HasExtra { key: "k".into() },
                        vec![Stmt::Finish],
                    )),
            ),
        );
        app.classes.insert(ClassDef::new("st.F", well_known::FRAGMENT));
        app.finalize_resources();

        let s = app_stats(&app);
        assert_eq!(s.classes, 2);
        assert_eq!(s.activity_classes, 1);
        assert_eq!(s.fragment_classes, 1);
        assert_eq!(s.methods, 1);
        assert_eq!(s.statements, 4, "set-content-view, invoke-api, if, finish");
        assert_eq!(s.sensitive_call_sites, 1);
        assert_eq!(s.layouts, 1);
        assert_eq!(s.widgets, 3);
        assert_eq!(s.clickable_widgets, 1);
        assert!(s.resources >= 2);
    }
}
