//! The `AndroidManifest.xml` model.
//!
//! The manifest is consulted in three places of the paper's pipeline:
//! activity enumeration during *Get the Effective Activities* (§IV-B2),
//! implicit-intent resolution in Algorithm 1 ("find A1 in
//! AndroidManifest.xml by action"), and FragDroid's manifest rewrite that
//! adds a MAIN action to every activity so `am start -n` can force-launch
//! it (§VI-A).

use crate::{ACTION_MAIN, CATEGORY_LAUNCHER};
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};

/// One `<intent-filter>` element.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntentFilter {
    /// `<action android:name="..."/>` entries.
    pub actions: Vec<String>,
    /// `<category android:name="..."/>` entries.
    pub categories: Vec<String>,
}

impl IntentFilter {
    /// A filter with one action and no categories.
    pub fn for_action(action: impl Into<String>) -> Self {
        IntentFilter { actions: vec![action.into()], categories: Vec::new() }
    }

    /// The `MAIN`/`LAUNCHER` filter of an entry activity.
    pub fn launcher() -> Self {
        IntentFilter {
            actions: vec![ACTION_MAIN.to_string()],
            categories: vec![CATEGORY_LAUNCHER.to_string()],
        }
    }

    /// Whether this filter matches the given action string.
    pub fn matches_action(&self, action: &str) -> bool {
        self.actions.iter().any(|a| a == action)
    }

    /// Whether this is a launcher filter (MAIN action + LAUNCHER category).
    pub fn is_launcher(&self) -> bool {
        self.matches_action(ACTION_MAIN) && self.categories.iter().any(|c| c == CATEGORY_LAUNCHER)
    }
}

/// One `<activity>` declaration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityDecl {
    /// Fully-qualified activity class name.
    pub name: ClassName,
    /// Whether other apps may start it (unused by the tool, kept for
    /// structural realism).
    pub exported: bool,
    /// Declared intent filters.
    pub intent_filters: Vec<IntentFilter>,
}

impl ActivityDecl {
    /// Declares an activity with no intent filters.
    pub fn new(name: impl Into<ClassName>) -> Self {
        ActivityDecl { name: name.into(), exported: false, intent_filters: Vec::new() }
    }

    /// Adds an intent filter (builder style).
    pub fn with_filter(mut self, filter: IntentFilter) -> Self {
        self.intent_filters.push(filter);
        self
    }

    /// Marks this as the launcher activity (builder style).
    pub fn launcher(self) -> Self {
        self.with_filter(IntentFilter::launcher())
    }

    /// Whether any filter is a launcher filter.
    pub fn is_launcher(&self) -> bool {
        self.intent_filters.iter().any(IntentFilter::is_launcher)
    }

    /// Whether any filter matches `action`.
    pub fn handles_action(&self, action: &str) -> bool {
        self.intent_filters.iter().any(|f| f.matches_action(action))
    }
}

/// The whole manifest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// The application package, e.g. `com.adobe.reader`.
    pub package: String,
    /// `<uses-permission>` entries.
    pub permissions: Vec<String>,
    /// `<activity>` entries.
    pub activities: Vec<ActivityDecl>,
}

impl Manifest {
    /// Creates an empty manifest for `package`.
    pub fn new(package: impl Into<String>) -> Self {
        Manifest { package: package.into(), permissions: Vec::new(), activities: Vec::new() }
    }

    /// Adds an activity declaration (builder style).
    pub fn with_activity(mut self, decl: ActivityDecl) -> Self {
        self.activities.push(decl);
        self
    }

    /// Adds a `<uses-permission>` (builder style).
    pub fn with_permission(mut self, permission: impl Into<String>) -> Self {
        self.permissions.push(permission.into());
        self
    }

    /// The launcher (entry) activity, if one is declared.
    pub fn launcher_activity(&self) -> Option<&ActivityDecl> {
        self.activities.iter().find(|a| a.is_launcher())
    }

    /// Resolves an implicit intent action to the first declaring activity —
    /// Algorithm 1's "find A1 in AndroidManifest.xml by action".
    pub fn resolve_action(&self, action: &str) -> Option<&ActivityDecl> {
        self.activities.iter().find(|a| a.handles_action(action))
    }

    /// Looks up an activity declaration by class name.
    pub fn activity(&self, name: &str) -> Option<&ActivityDecl> {
        self.activities.iter().find(|a| a.name.as_str() == name)
    }

    /// Whether the manifest declares `name`.
    pub fn declares(&self, name: &str) -> bool {
        self.activity(name).is_some()
    }

    /// FragDroid's static-phase rewrite: add
    /// `<action android:name="android.intent.action.MAIN"/>` to every
    /// activity so that `am start -n <COMPONENT>` can force-start any of
    /// them during the second loop phase.
    pub fn add_main_action_everywhere(&mut self) {
        for activity in &mut self.activities {
            if !activity.handles_action(ACTION_MAIN) {
                activity.intent_filters.push(IntentFilter::for_action(ACTION_MAIN));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest::new("com.example")
            .with_activity(ActivityDecl::new("com.example.Main").launcher())
            .with_activity(
                ActivityDecl::new("com.example.Share")
                    .with_filter(IntentFilter::for_action("com.example.ACTION_SHARE")),
            )
            .with_activity(ActivityDecl::new("com.example.Hidden"))
    }

    #[test]
    fn launcher_detection() {
        let m = manifest();
        assert_eq!(m.launcher_activity().unwrap().name.as_str(), "com.example.Main");
    }

    #[test]
    fn action_resolution() {
        let m = manifest();
        assert_eq!(
            m.resolve_action("com.example.ACTION_SHARE").unwrap().name.as_str(),
            "com.example.Share"
        );
        assert!(m.resolve_action("com.example.NOPE").is_none());
    }

    #[test]
    fn declares_and_lookup() {
        let m = manifest();
        assert!(m.declares("com.example.Hidden"));
        assert!(!m.declares("com.example.Missing"));
    }

    #[test]
    fn main_action_rewrite_reaches_every_activity() {
        let mut m = manifest();
        m.add_main_action_everywhere();
        for a in &m.activities {
            assert!(a.handles_action(crate::ACTION_MAIN), "{} missing MAIN", a.name);
        }
        // Idempotent: a second rewrite adds nothing.
        let before = m.clone();
        m.add_main_action_everywhere();
        assert_eq!(m, before);
    }

    #[test]
    fn launcher_filter_requires_category() {
        let plain_main =
            ActivityDecl::new("a.B").with_filter(IntentFilter::for_action(ACTION_MAIN));
        assert!(!plain_main.is_launcher());
    }
}
