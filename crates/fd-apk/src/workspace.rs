//! Apktool-style project directories.
//!
//! `apktool d app.apk` produces a directory with the manifest, smali
//! sources and resources; analysts edit it and `apktool b` rebuilds the
//! APK. This module provides the same workflow for the reproduction's
//! containers:
//!
//! ```text
//! <dir>/
//!   AndroidManifest.json        the manifest
//!   apktool.json                app metadata (category, downloads, packer)
//!   smali/<package path>/<Class>.smali    one textual class per file
//!   res/layout/<name>.json      one layout per file
//! ```
//!
//! [`unpack`] writes the directory from an [`AndroidApp`]; [`load`] reads
//! it back (re-parsing every `.smali` file). Unpack → load is lossless.

use crate::app::{AndroidApp, AppMeta};
use crate::error::ApkError;
use crate::layout::Layout;
use crate::manifest::Manifest;
use fd_smali::{parser, printer};
use std::path::Path;

/// An I/O or format error while reading/writing a project directory.
#[derive(Debug)]
pub enum WorkspaceError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A JSON file failed to parse.
    Json(String, serde_json::Error),
    /// A smali file failed to parse.
    Smali(String, fd_smali::ParseError),
    /// A value failed to serialize while writing the directory.
    Serialize(String, serde_json::Error),
    /// The container being unpacked failed to decompile.
    Apk(ApkError),
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkspaceError::Io(e) => write!(f, "workspace I/O error: {e}"),
            WorkspaceError::Json(file, e) => write!(f, "{file}: {e}"),
            WorkspaceError::Smali(file, e) => write!(f, "{file}: {e}"),
            WorkspaceError::Serialize(what, e) => write!(f, "cannot serialize {what}: {e}"),
            WorkspaceError::Apk(e) => write!(f, "container does not decompile: {e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<std::io::Error> for WorkspaceError {
    fn from(e: std::io::Error) -> Self {
        WorkspaceError::Io(e)
    }
}

impl From<ApkError> for WorkspaceError {
    fn from(e: ApkError) -> Self {
        WorkspaceError::Apk(e)
    }
}

fn to_pretty<T: serde::Serialize>(what: &str, value: &T) -> Result<String, WorkspaceError> {
    serde_json::to_string_pretty(value).map_err(|e| WorkspaceError::Serialize(what.to_string(), e))
}

/// Writes the decompiled app as an apktool-style directory.
pub fn unpack(app: &AndroidApp, dir: &Path) -> Result<(), WorkspaceError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("AndroidManifest.json"), to_pretty("manifest", &app.manifest)?)?;
    std::fs::write(dir.join("apktool.json"), to_pretty("app metadata", &app.meta)?)?;

    let smali_root = dir.join("smali");
    for class in app.classes.iter() {
        let rel: String = class.name.as_str().replace('.', "/");
        let path = smali_root.join(format!("{rel}.smali"));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, printer::print_class(class))?;
    }

    let layout_root = dir.join("res").join("layout");
    std::fs::create_dir_all(&layout_root)?;
    for layout in app.layouts.values() {
        std::fs::write(
            layout_root.join(format!("{}.json", layout.name)),
            to_pretty("layout", layout)?,
        )?;
    }
    Ok(())
}

fn collect_smali(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_smali(&path, out)?;
        } else if path.extension().map(|e| e == "smali").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads an apktool-style directory back into an [`AndroidApp`]
/// (re-parsing every smali file) and re-interns the resource table.
pub fn load(dir: &Path) -> Result<AndroidApp, WorkspaceError> {
    let manifest_path = dir.join("AndroidManifest.json");
    let manifest: Manifest = serde_json::from_str(&std::fs::read_to_string(&manifest_path)?)
        .map_err(|e| WorkspaceError::Json(manifest_path.display().to_string(), e))?;
    let meta_path = dir.join("apktool.json");
    let meta: AppMeta = if meta_path.exists() {
        serde_json::from_str(&std::fs::read_to_string(&meta_path)?)
            .map_err(|e| WorkspaceError::Json(meta_path.display().to_string(), e))?
    } else {
        AppMeta::default()
    };

    let mut app = AndroidApp::new(manifest);
    app.meta = meta;

    let mut smali_files = Vec::new();
    collect_smali(&dir.join("smali"), &mut smali_files)?;
    smali_files.sort();
    for path in smali_files {
        let text = std::fs::read_to_string(&path)?;
        let classes = parser::parse_classes(&text)
            .map_err(|e| WorkspaceError::Smali(path.display().to_string(), e))?;
        for class in classes {
            app.classes.insert(class);
        }
    }

    let layout_dir = dir.join("res").join("layout");
    if layout_dir.exists() {
        let mut paths: Vec<_> = std::fs::read_dir(&layout_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        paths.sort();
        for path in paths {
            if path.extension().map(|e| e == "json").unwrap_or(false) {
                let layout: Layout = serde_json::from_str(&std::fs::read_to_string(&path)?)
                    .map_err(|e| WorkspaceError::Json(path.display().to_string(), e))?;
                app.layouts.insert(layout.name.clone(), layout);
            }
        }
    }

    app.finalize_resources();
    Ok(app)
}

/// Convenience: unpack a packed container file's contents to a directory.
/// A malformed container surfaces as [`WorkspaceError::Apk`] with the
/// typed decode error (byte offsets intact) instead of a smuggled I/O
/// error.
pub fn unpack_container(bytes: &bytes::Bytes, dir: &Path) -> Result<(), WorkspaceError> {
    let app = crate::decompile(bytes)?;
    unpack(&app, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Widget, WidgetKind};
    use crate::manifest::ActivityDecl;
    use fd_smali::{well_known, ClassDef, MethodDef, ResRef, Stmt};

    fn sample() -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("ws.demo").with_activity(ActivityDecl::new("ws.demo.Main").launcher()),
        );
        app.layouts.insert(
            "main".into(),
            Layout::new(
                "main",
                Widget::new(WidgetKind::Group)
                    .with_child(Widget::new(WidgetKind::Button).with_id("go")),
            ),
        );
        app.classes.insert(ClassDef::new("ws.demo.Main", well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))),
        ));
        app.classes.insert(ClassDef::new("ws.demo.sub.Helper", well_known::OBJECT));
        app.meta.category = "Tools".into();
        app.meta.downloads = 1_000_000;
        app.finalize_resources();
        app
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fd-ws-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unpack_load_is_lossless() {
        let app = sample();
        let dir = tmpdir("roundtrip");
        unpack(&app, &dir).expect("unpack");
        // The expected files exist.
        assert!(dir.join("AndroidManifest.json").exists());
        assert!(dir.join("smali/ws/demo/Main.smali").exists());
        assert!(dir.join("smali/ws/demo/sub/Helper.smali").exists());
        assert!(dir.join("res/layout/main.json").exists());

        let back = load(&dir).expect("load");
        assert_eq!(back, app);
    }

    #[test]
    fn edited_smali_is_picked_up_on_load() {
        // The analyst workflow: unpack, edit a class, rebuild.
        let app = sample();
        let dir = tmpdir("edit");
        unpack(&app, &dir).expect("unpack");
        let path = dir.join("smali/ws/demo/sub/Helper.smali");
        let patched = std::fs::read_to_string(&path).unwrap().replace(
            ".end class",
            ".method public injected()\n    finish\n.end method\n.end class",
        );
        std::fs::write(&path, patched).unwrap();

        let back = load(&dir).expect("load");
        assert!(back.classes.get("ws.demo.sub.Helper").unwrap().method("injected").is_some());
    }

    #[test]
    fn malformed_smali_reports_the_file() {
        let app = sample();
        let dir = tmpdir("bad");
        unpack(&app, &dir).expect("unpack");
        std::fs::write(dir.join("smali/ws/demo/Main.smali"), "this is not smali").unwrap();
        match load(&dir) {
            Err(WorkspaceError::Smali(file, _)) => assert!(file.contains("Main.smali")),
            other => panic!("expected smali error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_container_reports_typed_apk_error() {
        let dir = tmpdir("apk-err");
        match unpack_container(&bytes::Bytes::from_static(b"FAPK\x00\x01"), &dir) {
            Err(WorkspaceError::Apk(ApkError::Truncated { offset: 6, .. })) => {}
            other => panic!("expected typed truncation, got {other:?}"),
        }
    }

    #[test]
    fn container_unpack_roundtrip() {
        let app = sample();
        let bytes = crate::pack(&app);
        let dir = tmpdir("container");
        unpack_container(&bytes, &dir).expect("unpack container");
        assert_eq!(load(&dir).unwrap(), app);
    }
}
