//! A whole synthetic Android app.

use crate::layout::Layout;
use crate::manifest::Manifest;
use crate::resources::ResourceTable;
use fd_smali::{visit, ClassPool, ResKind, ResRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Store metadata used by the corpus study (category, download band).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppMeta {
    /// Google-Play category, e.g. `"Tools"`.
    pub category: String,
    /// Download count lower bound, e.g. `100_000_000` for "100,000,000+".
    pub downloads: u64,
    /// Whether the app is protected by a packer (excluded from analysis,
    /// as in the paper's dataset section).
    pub packed: bool,
}

impl AppMeta {
    /// Formats the download band the way Google Play displays it
    /// (`"100,000,000+"`).
    pub fn downloads_band(&self) -> String {
        let mut digits = self.downloads.to_string();
        let mut grouped = String::new();
        while digits.len() > 3 {
            let split = digits.len() - 3;
            grouped = format!(",{}{}", &digits[split..], grouped);
            digits.truncate(split);
        }
        format!("{digits}{grouped}+")
    }
}

/// A complete app: manifest, code, layouts, resources, metadata.
///
/// This plays the role of the unpacked APK contents. [`crate::pack`] turns
/// it into the binary container; [`crate::decompile`] recovers it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AndroidApp {
    /// The manifest.
    pub manifest: Manifest,
    /// All classes.
    pub classes: ClassPool,
    /// Layout files keyed by layout resource name.
    pub layouts: BTreeMap<String, Layout>,
    /// The numeric resource table.
    pub resources: ResourceTable,
    /// Store metadata.
    pub meta: AppMeta,
}

impl AndroidApp {
    /// Creates an app with the given manifest and nothing else.
    pub fn new(manifest: Manifest) -> Self {
        AndroidApp {
            manifest,
            classes: ClassPool::new(),
            layouts: BTreeMap::new(),
            resources: ResourceTable::new(),
            meta: AppMeta::default(),
        }
    }

    /// The app's package name.
    pub fn package(&self) -> &str {
        &self.manifest.package
    }

    /// Adds a layout (builder style).
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layouts.insert(layout.name.clone(), layout);
        self
    }

    /// Looks up a layout by resource name.
    pub fn layout(&self, name: &str) -> Option<&Layout> {
        self.layouts.get(name)
    }

    /// Re-interns every resource referenced by layouts or code into the
    /// numeric table, the way `aapt` finalizes `R.java`. Call after the
    /// app's content is complete.
    pub fn finalize_resources(&mut self) {
        let resources = &mut self.resources;
        // One reusable lookup key: `intern` only clones it on a table
        // miss, so re-finalizing an already-interned app allocates
        // nothing beyond the key buffer.
        let mut key = ResRef { kind: ResKind::Layout, name: String::new() };
        for layout in self.layouts.values() {
            key.kind = ResKind::Layout;
            key.name.clear();
            key.name.push_str(&layout.name);
            resources.intern(&key);
            for widget in layout.root.iter() {
                if let Some(id) = &widget.id {
                    key.kind = ResKind::Id;
                    key.name.clear();
                    key.name.push_str(id);
                    resources.intern(&key);
                }
            }
        }
        // Intern code references by walking statements directly: `intern`
        // only clones on a table miss, so repeats cost a lookup, not an
        // allocation (the old per-class `referenced_resources` sets cloned
        // every reference).
        for class in self.classes.iter() {
            visit::walk_class(class, &mut |stmt| {
                if let Some(r) = stmt.res_ref() {
                    resources.intern(r);
                }
            });
        }
    }

    /// Structural sanity-check: every layout referenced from code exists
    /// and every activity declared in the manifest has a class. Returns a
    /// list of human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for decl in &self.manifest.activities {
            if !self.classes.contains(decl.name.as_str()) {
                problems.push(format!("manifest declares missing class {}", decl.name));
            }
        }
        for class in self.classes.iter() {
            for r in visit::referenced_resources(class) {
                if r.kind == ResKind::Layout && !self.layouts.contains_key(&r.name) {
                    problems.push(format!("{} inflates missing layout {}", class.name, r.name));
                }
            }
            // Fragment transactions must target classes that exist — the
            // runtime would throw ClassNotFoundException at commit.
            visit::walk_class(class, &mut |stmt| {
                if let fd_smali::Stmt::TxnAdd { fragment, .. }
                | fd_smali::Stmt::TxnReplace { fragment, .. }
                | fd_smali::Stmt::AttachDirect { fragment, .. } = stmt
                {
                    if !self.classes.contains(fragment.as_str()) {
                        problems.push(format!(
                            "{} commits missing fragment class {fragment}",
                            class.name
                        ));
                    }
                }
            });
            for lint in fd_smali::lint::lint_class(class) {
                problems.push(format!("{}.{}: {}", class.name, lint.method, lint.kind));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Widget, WidgetKind};
    use crate::manifest::ActivityDecl;
    use fd_smali::{ClassDef, MethodDef, Stmt};

    fn app() -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("com.example").with_activity(ActivityDecl::new("com.example.Main")),
        )
        .with_layout(Layout::new(
            "main",
            Widget::new(WidgetKind::Group)
                .with_child(Widget::new(WidgetKind::Button).with_id("go")),
        ));
        app.classes.insert(
            ClassDef::new("com.example.Main", fd_smali::well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))),
            ),
        );
        app
    }

    #[test]
    fn finalize_interns_layout_and_widget_ids() {
        let mut a = app();
        a.finalize_resources();
        assert!(a.resources.id_of(&ResRef::layout("main")).is_some());
        assert!(a.resources.id_of(&ResRef::id("go")).is_some());
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(app().validate().is_empty());
    }

    #[test]
    fn validate_reports_missing_class_and_layout() {
        let mut a = app();
        a.manifest.activities.push(ActivityDecl::new("com.example.Ghost"));
        a.classes.insert(
            ClassDef::new("com.example.Broken", fd_smali::well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("nope"))),
            ),
        );
        let problems = a.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn downloads_band_formatting() {
        let meta = AppMeta { downloads: 100_000_000, ..Default::default() };
        assert_eq!(meta.downloads_band(), "100,000,000+");
        let small = AppMeta { downloads: 500, ..Default::default() };
        assert_eq!(small.downloads_band(), "500+");
        let mid = AppMeta { downloads: 50_000, ..Default::default() };
        assert_eq!(mid.downloads_band(), "50,000+");
    }
}
