//! FDCS — the sharded on-disk corpus format for streaming suite runs.
//!
//! A corpus far larger than RAM is laid out as a directory:
//!
//! ```text
//! corpus/
//!   corpus.json        manifest: seed, profile, shard list, digest
//!   shard-0000.fdcs    packed containers + inputs, index at the tail
//!   shard-0001.fdcs
//! ```
//!
//! One shard file is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "FDCS"
//! 4       2     version (u16 BE)
//! 6       4     entry count (u32 BE)
//! 10      8     index offset (u64 BE)
//! 18      …     entry payloads, back to back:
//!                 container bytes ++ inputs JSON bytes
//! index   16/e  per entry: payload offset (u64 BE),
//!                 container length (u32 BE), inputs length (u32 BE)
//! ```
//!
//! The index is written last so the writer streams payloads in one pass
//! (O(1 app) memory; the in-RAM index costs 16 bytes/entry) and patches
//! the header on [`ShardWriter::finish`]. The decoder demands *strict
//! contiguity*: entry 0 starts at byte 18, every entry starts where the
//! previous one ended, and the last entry ends exactly where the index
//! begins — so overlapping entries, gaps, and offsets past EOF are all
//! typed [`ApkError`]s, never panics. [`parse_shard`] is the pure
//! byte-slice entry point `fd-fuzz` drives; [`ShardReader`] applies the
//! same validation to a file without reading its payload region.
//!
//! The streaming [`CorpusReader::corpus_digest`] folds exactly what the
//! in-memory suite digest folds — container bytes, then each inputs
//! entry's key and value bytes in `BTreeMap` order — so a lazily
//! streamed corpus fingerprints identically to a materialized one.

use crate::error::{ApkError, CorruptCause};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix of one corpus shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"FDCS";
/// Highest shard-format version this library understands.
pub const SHARD_VERSION: u16 = 1;
/// Name of the corpus manifest inside a corpus directory.
pub const MANIFEST_FILE: &str = "corpus.json";

/// Fixed shard header length: magic + version + entries + index offset.
const HEADER_LEN: usize = 18;
/// Bytes per index entry: offset u64 + container len u32 + inputs len u32.
const INDEX_ENTRY_LEN: usize = 16;

/// FNV-1a offset basis — the corpus digest seed. Folding every entry
/// with [`fold_entry_digest`] starting from this value reproduces the
/// suite runner's in-memory corpus digest.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds one corpus entry — container bytes, then each inputs key and
/// value in map order — into a running digest seeded by [`DIGEST_SEED`].
pub fn fold_entry_digest(
    mut hash: u64,
    container: &[u8],
    inputs: &BTreeMap<String, String>,
) -> u64 {
    hash = fnv1a(hash, container);
    for (key, value) in inputs {
        hash = fnv1a(hash, key.as_bytes());
        hash = fnv1a(hash, value.as_bytes());
    }
    hash
}

/// Renders a digest the way the CLI prints it: `0x` + 16 lowercase hex.
pub fn format_digest(digest: u64) -> String {
    format!("{digest:#018x}")
}

/// Parses a [`format_digest`]-rendered digest back to its value.
pub fn parse_digest(text: &str) -> Result<u64, String> {
    let hex =
        text.strip_prefix("0x").ok_or_else(|| format!("digest '{text}' does not start with 0x"))?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return Err(format!("digest '{text}' is not 16 lowercase hex digits"));
    }
    u64::from_str_radix(hex, 16).map_err(|e| format!("digest '{text}': {e}"))
}

/// One entry's location inside a shard's payload region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EntrySpan {
    offset: u64,
    container_len: u32,
    inputs_len: u32,
}

/// Parses the fixed 18-byte shard header, returning the entry count and
/// the index offset. Only needs the header bytes; extra bytes are
/// ignored here (the caller validates the full layout).
fn parse_header(bytes: &[u8]) -> Result<(u32, u64), ApkError> {
    if bytes.len() < 4 {
        return Err(ApkError::Truncated { offset: 0, needed: 4, available: bytes.len() });
    }
    if &bytes[..4] != SHARD_MAGIC {
        return Err(ApkError::BadMagic);
    }
    let take = |offset: usize, needed: usize| -> Result<&[u8], ApkError> {
        bytes.get(offset..offset + needed).ok_or(ApkError::Truncated {
            offset,
            needed,
            available: bytes.len().saturating_sub(offset),
        })
    };
    let v = take(4, 2)?;
    let version = u16::from_be_bytes([v[0], v[1]]);
    if version != SHARD_VERSION {
        return Err(ApkError::UnsupportedVersion(version));
    }
    let e = take(6, 4)?;
    let entries = u32::from_be_bytes([e[0], e[1], e[2], e[3]]);
    let o = take(10, 8)?;
    let index_offset = u64::from_be_bytes([o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7]]);
    Ok((entries, index_offset))
}

/// Validates the header-declared layout against the shard's total
/// length, returning the index region's byte length. Catches an index
/// offset inside the header, past EOF, an index that does not fit, and
/// trailing bytes after it.
fn validate_layout(entries: u32, index_offset: u64, total_len: u64) -> Result<usize, ApkError> {
    if index_offset < HEADER_LEN as u64 {
        return Err(ApkError::corrupt(
            "index",
            format!("index offset {index_offset} overlaps the {HEADER_LEN}-byte header"),
        ));
    }
    if index_offset > total_len {
        return Err(ApkError::BadLengthField {
            section: "index",
            offset: 10,
            declared: usize::try_from(index_offset).unwrap_or(usize::MAX),
            available: usize::try_from(total_len).unwrap_or(usize::MAX),
        });
    }
    let index_len =
        (entries as usize).checked_mul(INDEX_ENTRY_LEN).ok_or(ApkError::BadLengthField {
            section: "index",
            offset: 6,
            declared: usize::MAX,
            available: usize::try_from(total_len - index_offset).unwrap_or(usize::MAX),
        })?;
    let available = total_len - index_offset;
    if index_len as u64 > available {
        return Err(ApkError::BadLengthField {
            section: "index",
            offset: 6,
            declared: index_len,
            available: usize::try_from(available).unwrap_or(usize::MAX),
        });
    }
    if (index_len as u64) < available {
        let count = usize::try_from(available - index_len as u64).unwrap_or(usize::MAX);
        return Err(ApkError::Corrupt {
            section: "index",
            cause: CorruptCause::TrailingBytes { count },
        });
    }
    Ok(index_len)
}

/// Walks the index table, enforcing strict entry contiguity: entry 0 at
/// byte 18, each entry starting where the previous ended, the last one
/// ending exactly at the index. `index_bytes` must be exactly
/// `entries × 16` bytes (guaranteed by [`validate_layout`]).
fn parse_index(
    index_bytes: &[u8],
    entries: u32,
    index_offset: u64,
) -> Result<Vec<EntrySpan>, ApkError> {
    let mut spans = Vec::with_capacity(entries as usize);
    let mut expected = HEADER_LEN as u64;
    for i in 0..entries as usize {
        let at = i * INDEX_ENTRY_LEN;
        let row = &index_bytes[at..at + INDEX_ENTRY_LEN];
        let offset =
            u64::from_be_bytes([row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7]]);
        let container_len = u32::from_be_bytes([row[8], row[9], row[10], row[11]]);
        let inputs_len = u32::from_be_bytes([row[12], row[13], row[14], row[15]]);
        if offset != expected {
            return Err(ApkError::corrupt(
                "index",
                format!(
                    "entry {i} starts at byte {offset} but the previous entry ends at \
                     {expected}: overlapping or discontiguous entries"
                ),
            ));
        }
        let payload = container_len as u64 + inputs_len as u64;
        let end = offset.checked_add(payload).ok_or(ApkError::BadLengthField {
            section: "entry",
            offset: usize::try_from(index_offset).unwrap_or(usize::MAX).saturating_add(at),
            declared: usize::try_from(payload).unwrap_or(usize::MAX),
            available: 0,
        })?;
        if end > index_offset {
            return Err(ApkError::BadLengthField {
                section: "entry",
                offset: usize::try_from(index_offset).unwrap_or(usize::MAX).saturating_add(at),
                declared: usize::try_from(payload).unwrap_or(usize::MAX),
                available: usize::try_from(index_offset.saturating_sub(offset))
                    .unwrap_or(usize::MAX),
            });
        }
        spans.push(EntrySpan { offset, container_len, inputs_len });
        expected = end;
    }
    if expected != index_offset {
        return Err(ApkError::corrupt(
            "index",
            format!("{} payload bytes unclaimed by the index", index_offset - expected),
        ));
    }
    Ok(spans)
}

/// A fully validated in-memory view of one shard — borrowed slices into
/// the shard bytes, in the spirit of [`crate::ContainerView`].
#[derive(Debug)]
pub struct ShardView<'a> {
    data: &'a [u8],
    spans: Vec<EntrySpan>,
}

impl<'a> ShardView<'a> {
    /// Number of entries in the shard.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Entry `index`'s container bytes, borrowed from the shard.
    pub fn container(&self, index: usize) -> &'a [u8] {
        let s = self.spans[index];
        let start = s.offset as usize;
        &self.data[start..start + s.container_len as usize]
    }

    /// Entry `index`'s raw inputs JSON bytes, borrowed from the shard.
    pub fn inputs_bytes(&self, index: usize) -> &'a [u8] {
        let s = self.spans[index];
        let start = s.offset as usize + s.container_len as usize;
        &self.data[start..start + s.inputs_len as usize]
    }

    /// Decodes entry `index`'s inputs map from its JSON bytes.
    pub fn inputs(&self, index: usize) -> Result<BTreeMap<String, String>, ApkError> {
        serde_json::from_slice(self.inputs_bytes(index))
            .map_err(|e| ApkError::Corrupt { section: "inputs", cause: CorruptCause::Json(e) })
    }
}

/// Parses and fully validates one shard's bytes — the pure, panic-free
/// entry point the fuzz harness drives. Structure (header, index
/// bounds, entry contiguity) is checked here; inputs JSON decodes
/// lazily via [`ShardView::inputs`].
pub fn parse_shard(bytes: &[u8]) -> Result<ShardView<'_>, ApkError> {
    let (entries, index_offset) = parse_header(bytes)?;
    let index_len = validate_layout(entries, index_offset, bytes.len() as u64)?;
    let start = index_offset as usize;
    let spans = parse_index(&bytes[start..start + index_len], entries, index_offset)?;
    Ok(ShardView { data: bytes, spans })
}

/// A typed failure while reading or writing an on-disk corpus. File-
/// level I/O keeps its [`io::Error`] (so this type has no `Clone`/
/// `PartialEq`); byte-level failures carry the shard's [`ApkError`].
#[derive(Debug)]
pub enum CorpusError {
    /// An I/O operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// What was being attempted.
        op: &'static str,
        /// The underlying error.
        error: io::Error,
    },
    /// A shard file's bytes are malformed.
    Shard {
        /// The shard file.
        path: PathBuf,
        /// The decode failure.
        error: ApkError,
    },
    /// The corpus manifest is missing, malformed, or inconsistent with
    /// the shard files it describes.
    Manifest {
        /// The manifest file.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// A fetch named an entry index past the end of the corpus.
    OutOfRange {
        /// The requested index.
        index: usize,
        /// The corpus length.
        len: usize,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, op, error } => {
                write!(f, "corpus I/O failure: {op} {}: {error}", path.display())
            }
            CorpusError::Shard { path, error } => {
                write!(f, "corrupt corpus shard {}: {error}", path.display())
            }
            CorpusError::Manifest { path, detail } => {
                write!(f, "bad corpus manifest {}: {detail}", path.display())
            }
            CorpusError::OutOfRange { index, len } => {
                write!(f, "corpus entry {index} out of range (corpus has {len})")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io { error, .. } => Some(error),
            CorpusError::Shard { error, .. } => Some(error),
            _ => None,
        }
    }
}

fn io_err(path: &Path, op: &'static str, error: io::Error) -> CorpusError {
    CorpusError::Io { path: path.to_path_buf(), op, error }
}

/// Streams entries into one shard file: header placeholder first, then
/// payloads in one pass, then the index, then a header patch on
/// [`ShardWriter::finish`]. Memory stays O(1 app) plus 16 bytes per
/// entry of in-RAM index.
#[derive(Debug)]
pub struct ShardWriter {
    path: PathBuf,
    file: BufWriter<File>,
    spans: Vec<EntrySpan>,
    cursor: u64,
}

impl ShardWriter {
    /// Creates the shard file (truncating any existing one) and writes a
    /// placeholder header.
    pub fn create(path: &Path) -> Result<Self, CorpusError> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        let mut writer = ShardWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            spans: Vec::new(),
            cursor: HEADER_LEN as u64,
        };
        let header = shard_header(0, 0);
        writer.file.write_all(&header).map_err(|e| io_err(&writer.path, "write header", e))?;
        Ok(writer)
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends one entry: the packed container bytes plus its inputs
    /// map (serialized as compact JSON with sorted keys).
    pub fn append(
        &mut self,
        container: &[u8],
        inputs: &BTreeMap<String, String>,
    ) -> Result<(), CorpusError> {
        let inputs_json = serde_json::to_vec(inputs)
            .map_err(|e| io_err(&self.path, "serialize inputs", io::Error::other(e.to_string())))?;
        let container_len = u32::try_from(container.len()).map_err(|_| {
            io_err(&self.path, "append", io::Error::other("container exceeds u32 length"))
        })?;
        let inputs_len = u32::try_from(inputs_json.len()).map_err(|_| {
            io_err(&self.path, "append", io::Error::other("inputs exceed u32 length"))
        })?;
        self.file.write_all(container).map_err(|e| io_err(&self.path, "write container", e))?;
        self.file.write_all(&inputs_json).map_err(|e| io_err(&self.path, "write inputs", e))?;
        self.spans.push(EntrySpan { offset: self.cursor, container_len, inputs_len });
        self.cursor += container.len() as u64 + inputs_json.len() as u64;
        Ok(())
    }

    /// Writes the index table, patches the header with the entry count
    /// and index offset, and syncs the file. Returns the final file
    /// length in bytes.
    pub fn finish(self) -> Result<u64, CorpusError> {
        let ShardWriter { path, mut file, spans, cursor } = self;
        let entries = u32::try_from(spans.len())
            .map_err(|_| io_err(&path, "finish", io::Error::other("more than u32::MAX entries")))?;
        let mut total = cursor;
        for span in &spans {
            let mut row = [0u8; INDEX_ENTRY_LEN];
            row[..8].copy_from_slice(&span.offset.to_be_bytes());
            row[8..12].copy_from_slice(&span.container_len.to_be_bytes());
            row[12..16].copy_from_slice(&span.inputs_len.to_be_bytes());
            file.write_all(&row).map_err(|e| io_err(&path, "write index", e))?;
            total += INDEX_ENTRY_LEN as u64;
        }
        file.flush().map_err(|e| io_err(&path, "flush", e))?;
        let mut inner = file.into_inner().map_err(|e| io_err(&path, "flush", e.into_error()))?;
        inner.seek(SeekFrom::Start(6)).map_err(|e| io_err(&path, "seek header", e))?;
        let mut patch = [0u8; 12];
        patch[..4].copy_from_slice(&entries.to_be_bytes());
        patch[4..].copy_from_slice(&cursor.to_be_bytes());
        inner.write_all(&patch).map_err(|e| io_err(&path, "patch header", e))?;
        inner.sync_all().map_err(|e| io_err(&path, "sync", e))?;
        Ok(total)
    }
}

fn shard_header(entries: u32, index_offset: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(SHARD_MAGIC);
    header[4..6].copy_from_slice(&SHARD_VERSION.to_be_bytes());
    header[6..10].copy_from_slice(&entries.to_be_bytes());
    header[10..18].copy_from_slice(&index_offset.to_be_bytes());
    header
}

/// Encodes entries into one in-memory shard — the writer's byte layout
/// without touching disk, for tests and fuzz seed templates.
pub fn encode_shard(entries: &[(Vec<u8>, BTreeMap<String, String>)]) -> Vec<u8> {
    let mut payload = Vec::new();
    let mut spans = Vec::with_capacity(entries.len());
    let mut cursor = HEADER_LEN as u64;
    for (container, inputs) in entries {
        let inputs_json = serde_json::to_vec(inputs).expect("string maps always serialize");
        spans.push(EntrySpan {
            offset: cursor,
            container_len: container.len() as u32,
            inputs_len: inputs_json.len() as u32,
        });
        payload.extend_from_slice(container);
        payload.extend_from_slice(&inputs_json);
        cursor += container.len() as u64 + inputs_json.len() as u64;
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + spans.len() * INDEX_ENTRY_LEN);
    out.extend_from_slice(&shard_header(entries.len() as u32, cursor));
    out.extend_from_slice(&payload);
    for span in &spans {
        out.extend_from_slice(&span.offset.to_be_bytes());
        out.extend_from_slice(&span.container_len.to_be_bytes());
        out.extend_from_slice(&span.inputs_len.to_be_bytes());
    }
    out
}

/// A lazily read shard file: the header and index are validated at open
/// (the payload region is never read whole); entries are fetched by
/// seek + exact-length reads, so resident memory stays O(1 app).
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    file: Mutex<File>,
    spans: Vec<EntrySpan>,
}

impl ShardReader {
    /// Opens and validates a shard file's header and index table.
    pub fn open(path: &Path) -> Result<Self, CorpusError> {
        let mut file = File::open(path).map_err(|e| io_err(path, "open", e))?;
        let total_len = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(&mut file, &mut header).map_err(|e| io_err(path, "read header", e))?;
        let shard = |error: ApkError| CorpusError::Shard { path: path.to_path_buf(), error };
        let (entries, index_offset) = parse_header(&header[..got]).map_err(shard)?;
        let index_len = validate_layout(entries, index_offset, total_len).map_err(shard)?;
        file.seek(SeekFrom::Start(index_offset)).map_err(|e| io_err(path, "seek index", e))?;
        let mut index_bytes = vec![0u8; index_len];
        file.read_exact(&mut index_bytes).map_err(|e| io_err(path, "read index", e))?;
        let spans = parse_index(&index_bytes, entries, index_offset).map_err(shard)?;
        Ok(ShardReader { path: path.to_path_buf(), file: Mutex::new(file), spans })
    }

    /// Number of entries in the shard.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Reads entry `index`: the container bytes plus the decoded inputs
    /// map.
    pub fn fetch(&self, index: usize) -> Result<(Vec<u8>, BTreeMap<String, String>), CorpusError> {
        let span = *self
            .spans
            .get(index)
            .ok_or(CorpusError::OutOfRange { index, len: self.spans.len() })?;
        let mut file = self.file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        file.seek(SeekFrom::Start(span.offset)).map_err(|e| io_err(&self.path, "seek entry", e))?;
        let mut container = vec![0u8; span.container_len as usize];
        file.read_exact(&mut container).map_err(|e| io_err(&self.path, "read container", e))?;
        let mut inputs_json = vec![0u8; span.inputs_len as usize];
        file.read_exact(&mut inputs_json).map_err(|e| io_err(&self.path, "read inputs", e))?;
        drop(file);
        let inputs = serde_json::from_slice(&inputs_json).map_err(|e| CorpusError::Shard {
            path: self.path.clone(),
            error: ApkError::Corrupt { section: "inputs", cause: CorruptCause::Json(e) },
        })?;
        Ok((container, inputs))
    }
}

/// Reads as many bytes as the stream holds, up to `buf.len()` — a
/// short file must surface as a typed truncation, not an I/O error.
fn read_up_to(file: &mut File, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match file.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// One shard's row in the corpus manifest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Entries in the shard.
    pub apps: usize,
}

/// The corpus directory's manifest (`corpus.json`): how the corpus was
/// generated and how it is sharded.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusManifest {
    /// Manifest format version.
    pub version: u32,
    /// The generator seed the corpus reproduces from.
    pub seed: u64,
    /// Total entries across all shards.
    pub apps: usize,
    /// The generator profile name (e.g. `tiny`, `paper`).
    pub profile: String,
    /// Entries per shard file (the last shard may hold fewer).
    pub shard_size: usize,
    /// The streaming corpus digest, rendered by [`format_digest`].
    pub corpus_digest: String,
    /// The shard files, in corpus order.
    pub shards: Vec<ShardManifest>,
}

impl CorpusManifest {
    /// The manifest's recorded digest as a value.
    pub fn digest_value(&self) -> Result<u64, String> {
        parse_digest(&self.corpus_digest)
    }
}

/// Writes the manifest (pretty JSON) into a corpus directory.
pub fn write_manifest(dir: &Path, manifest: &CorpusManifest) -> Result<(), CorpusError> {
    let path = dir.join(MANIFEST_FILE);
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| io_err(&path, "serialize manifest", io::Error::other(e.to_string())))?;
    std::fs::write(&path, json.as_bytes()).map_err(|e| io_err(&path, "write", e))
}

/// A lazily read corpus directory: the manifest plus one [`ShardReader`]
/// per shard. Entries are addressed by a global index; only the shard
/// indexes live in memory.
#[derive(Debug)]
pub struct CorpusReader {
    manifest: CorpusManifest,
    shards: Vec<ShardReader>,
    starts: Vec<usize>,
    total: usize,
}

impl CorpusReader {
    /// Opens a corpus directory: reads the manifest, opens every shard,
    /// and cross-checks the per-shard entry counts.
    pub fn open(dir: &Path) -> Result<Self, CorpusError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path).map_err(|e| io_err(&manifest_path, "read", e))?;
        let manifest: CorpusManifest = serde_json::from_slice(&bytes).map_err(|e| {
            CorpusError::Manifest { path: manifest_path.clone(), detail: e.to_string() }
        })?;
        if manifest.version != 1 {
            return Err(CorpusError::Manifest {
                path: manifest_path.clone(),
                detail: format!("unsupported manifest version {}", manifest.version),
            });
        }
        let mut shards = Vec::with_capacity(manifest.shards.len());
        let mut starts = Vec::with_capacity(manifest.shards.len());
        let mut total = 0usize;
        for row in &manifest.shards {
            let reader = ShardReader::open(&dir.join(&row.file))?;
            if reader.len() != row.apps {
                return Err(CorpusError::Manifest {
                    path: manifest_path.clone(),
                    detail: format!(
                        "shard {} holds {} entries but the manifest declares {}",
                        row.file,
                        reader.len(),
                        row.apps
                    ),
                });
            }
            starts.push(total);
            total += reader.len();
            shards.push(reader);
        }
        if total != manifest.apps {
            return Err(CorpusError::Manifest {
                path: manifest_path,
                detail: format!(
                    "shards hold {total} entries but the manifest declares {}",
                    manifest.apps
                ),
            });
        }
        Ok(CorpusReader { manifest, shards, starts, total })
    }

    /// The corpus manifest.
    pub fn manifest(&self) -> &CorpusManifest {
        &self.manifest
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the corpus holds no entries.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Reads entry `index` (global, across shards).
    pub fn fetch(&self, index: usize) -> Result<(Vec<u8>, BTreeMap<String, String>), CorpusError> {
        if index >= self.total {
            return Err(CorpusError::OutOfRange { index, len: self.total });
        }
        let shard = self.starts.partition_point(|&start| start <= index) - 1;
        self.shards[shard].fetch(index - self.starts[shard])
    }

    /// Streams every entry once, folding the corpus digest — identical
    /// to the in-memory suite digest of the same containers + inputs.
    pub fn corpus_digest(&self) -> Result<u64, CorpusError> {
        let mut hash = DIGEST_SEED;
        for index in 0..self.total {
            let (container, inputs) = self.fetch(index)?;
            hash = fold_entry_digest(hash, &container, &inputs);
        }
        Ok(hash)
    }

    /// Checks the streamed digest against the manifest's recorded one.
    pub fn verify_digest(&self) -> Result<u64, CorpusError> {
        let recorded = self.manifest.digest_value().map_err(|detail| CorpusError::Manifest {
            path: PathBuf::from(MANIFEST_FILE),
            detail,
        })?;
        let streamed = self.corpus_digest()?;
        if streamed != recorded {
            return Err(CorpusError::Manifest {
                path: PathBuf::from(MANIFEST_FILE),
                detail: format!(
                    "manifest digest {} does not match streamed digest {}",
                    format_digest(recorded),
                    format_digest(streamed)
                ),
            });
        }
        Ok(streamed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(Vec<u8>, BTreeMap<String, String>)> {
        let mut inputs = BTreeMap::new();
        inputs.insert("user".to_string(), "alice".to_string());
        inputs.insert("pin".to_string(), "1234".to_string());
        vec![
            (b"container-zero".to_vec(), inputs),
            (b"c1".to_vec(), BTreeMap::new()),
            (Vec::new(), BTreeMap::new()),
        ]
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fd-corpus-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn encode_parse_roundtrip() {
        let entries = sample_entries();
        let bytes = encode_shard(&entries);
        let view = parse_shard(&bytes).expect("valid shard");
        assert_eq!(view.len(), 3);
        for (i, (container, inputs)) in entries.iter().enumerate() {
            assert_eq!(view.container(i), &container[..]);
            assert_eq!(&view.inputs(i).expect("inputs decode"), inputs);
        }
    }

    #[test]
    fn empty_shard_is_valid() {
        let bytes = encode_shard(&[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        let view = parse_shard(&bytes).expect("empty shard parses");
        assert!(view.is_empty());
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = encode_shard(&sample_entries());
        for cut in 0..bytes.len() {
            let err = parse_shard(&bytes[..cut]).expect_err("truncated shard must fail");
            match err {
                ApkError::Truncated { .. }
                | ApkError::BadMagic
                | ApkError::BadLengthField { .. }
                | ApkError::Corrupt { .. } => {}
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_shard(&sample_entries());
        bytes[0] = b'X';
        assert_eq!(parse_shard(&bytes).unwrap_err(), ApkError::BadMagic);
        let mut bytes = encode_shard(&sample_entries());
        bytes[5] = 9;
        assert_eq!(parse_shard(&bytes).unwrap_err(), ApkError::UnsupportedVersion(9));
    }

    #[test]
    fn index_offset_past_eof_is_typed() {
        let mut bytes = encode_shard(&sample_entries());
        bytes[10..18].copy_from_slice(&(u64::MAX / 2).to_be_bytes());
        assert!(matches!(
            parse_shard(&bytes).unwrap_err(),
            ApkError::BadLengthField { section: "index", offset: 10, .. }
        ));
    }

    #[test]
    fn index_offset_inside_header_is_typed() {
        let mut bytes = encode_shard(&sample_entries());
        bytes[10..18].copy_from_slice(&4u64.to_be_bytes());
        assert!(matches!(
            parse_shard(&bytes).unwrap_err(),
            ApkError::Corrupt { section: "index", .. }
        ));
    }

    #[test]
    fn trailing_bytes_after_index_are_rejected() {
        let mut bytes = encode_shard(&sample_entries());
        bytes.push(0xaa);
        assert!(matches!(
            parse_shard(&bytes).unwrap_err(),
            ApkError::Corrupt { section: "index", cause: CorruptCause::TrailingBytes { count: 1 } }
        ));
    }

    #[test]
    fn overlapping_entries_are_rejected() {
        let entries = sample_entries();
        let mut bytes = encode_shard(&entries);
        // Point entry 1's offset back at entry 0's payload.
        let index_offset = bytes.len() - entries.len() * INDEX_ENTRY_LEN;
        let row1 = index_offset + INDEX_ENTRY_LEN;
        bytes[row1..row1 + 8].copy_from_slice(&(HEADER_LEN as u64).to_be_bytes());
        let err = parse_shard(&bytes).unwrap_err();
        assert!(
            matches!(&err, ApkError::Corrupt { section: "index", .. }),
            "overlap must be typed, got {err:?}"
        );
        assert!(err.to_string().contains("overlapping"));
    }

    #[test]
    fn entry_spilling_into_index_is_rejected() {
        let entries = sample_entries();
        let mut bytes = encode_shard(&entries);
        let index_offset = bytes.len() - entries.len() * INDEX_ENTRY_LEN;
        // Inflate the last entry's container length so it runs past the
        // index offset.
        let row_last = index_offset + 2 * INDEX_ENTRY_LEN;
        bytes[row_last + 8..row_last + 12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            parse_shard(&bytes).unwrap_err(),
            ApkError::BadLengthField { section: "entry", .. }
        ));
    }

    #[test]
    fn corrupt_inputs_json_is_typed_and_lazy() {
        let entries = sample_entries();
        let mut bytes = encode_shard(&entries);
        // Entry 0's inputs start after its 14-byte container.
        let inputs_at = HEADER_LEN + entries[0].0.len();
        bytes[inputs_at] = b'!';
        let view = parse_shard(&bytes).expect("structure is still valid");
        assert!(matches!(
            view.inputs(0).unwrap_err(),
            ApkError::Corrupt { section: "inputs", cause: CorruptCause::Json(_) }
        ));
        assert!(view.inputs(1).is_ok(), "other entries stay readable");
    }

    #[test]
    fn writer_reader_roundtrip_and_byte_identity() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("shard.fdcs");
        let entries = sample_entries();
        let mut writer = ShardWriter::create(&path).expect("create");
        for (container, inputs) in &entries {
            writer.append(container, inputs).expect("append");
        }
        let total = writer.finish().expect("finish");
        let on_disk = std::fs::read(&path).expect("read back");
        assert_eq!(on_disk.len() as u64, total);
        assert_eq!(on_disk, encode_shard(&entries), "writer and encoder agree byte-for-byte");
        let reader = ShardReader::open(&path).expect("open");
        assert_eq!(reader.len(), entries.len());
        for (i, (container, inputs)) in entries.iter().enumerate() {
            let (c, m) = reader.fetch(i).expect("fetch");
            assert_eq!(&c, container);
            assert_eq!(&m, inputs);
        }
        assert!(matches!(
            reader.fetch(99).unwrap_err(),
            CorpusError::OutOfRange { index: 99, len: 3 }
        ));
    }

    #[test]
    fn corpus_reader_spans_shards_and_digests() {
        let dir = tmp_dir("corpus");
        let entries = sample_entries();
        // Two shards: entries [0, 1] and [2].
        let mut expected_digest = DIGEST_SEED;
        type Entries<'a> = &'a [(Vec<u8>, BTreeMap<String, String>)];
        let splits: [Entries<'_>; 2] = [&entries[..2], &entries[2..]];
        let mut shards = Vec::new();
        for (i, chunk) in splits.iter().enumerate() {
            let file = format!("shard-{i:04}.fdcs");
            let mut writer = ShardWriter::create(&dir.join(&file)).expect("create");
            for (container, inputs) in chunk.iter() {
                writer.append(container, inputs).expect("append");
                expected_digest = fold_entry_digest(expected_digest, container, inputs);
            }
            writer.finish().expect("finish");
            shards.push(ShardManifest { file, apps: chunk.len() });
        }
        let manifest = CorpusManifest {
            version: 1,
            seed: 7,
            apps: entries.len(),
            profile: "tiny".to_string(),
            shard_size: 2,
            corpus_digest: format_digest(expected_digest),
            shards,
        };
        write_manifest(&dir, &manifest).expect("write manifest");
        let reader = CorpusReader::open(&dir).expect("open corpus");
        assert_eq!(reader.len(), 3);
        for (i, (container, inputs)) in entries.iter().enumerate() {
            let (c, m) = reader.fetch(i).expect("fetch");
            assert_eq!(&c, container);
            assert_eq!(&m, inputs);
        }
        assert_eq!(reader.corpus_digest().expect("digest"), expected_digest);
        assert_eq!(reader.verify_digest().expect("verify"), expected_digest);
        assert_eq!(reader.manifest(), &manifest);
    }

    #[test]
    fn manifest_shard_count_mismatch_is_typed() {
        let dir = tmp_dir("mismatch");
        let mut writer = ShardWriter::create(&dir.join("shard-0000.fdcs")).expect("create");
        writer.append(b"c", &BTreeMap::new()).expect("append");
        writer.finish().expect("finish");
        let manifest = CorpusManifest {
            version: 1,
            seed: 0,
            apps: 2,
            profile: "tiny".to_string(),
            shard_size: 2,
            corpus_digest: format_digest(DIGEST_SEED),
            shards: vec![ShardManifest { file: "shard-0000.fdcs".to_string(), apps: 2 }],
        };
        write_manifest(&dir, &manifest).expect("write manifest");
        assert!(matches!(CorpusReader::open(&dir).unwrap_err(), CorpusError::Manifest { .. }));
    }

    #[test]
    fn digest_text_roundtrips() {
        let digest = 0x0123_4567_89ab_cdef_u64;
        assert_eq!(parse_digest(&format_digest(digest)).expect("roundtrip"), digest);
        assert!(parse_digest("123").is_err());
        assert!(parse_digest("0xZZ").is_err());
    }

    #[test]
    fn arbitrary_mutations_never_panic() {
        // A cheap in-process mirror of the fuzz target: flip each byte of
        // a valid shard and parse; every outcome must be Ok or typed.
        let bytes = encode_shard(&sample_entries());
        for i in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[i] ^= 0xff;
            let _ = parse_shard(&mutant);
        }
    }
}
