//! The resource table: numeric resource-ID assignment.
//!
//! Android's `aapt` assigns every resource a unique `0x7fTTEEEE` integer
//! (package `7f`, type byte, entry index). The paper's resource dependency
//! (§V-B) is keyed on these numbers; here the table maps the symbolic
//! [`ResRef`]s used throughout the IR to their numeric IDs and back.

use fd_smali::{ResKind, ResRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

const PACKAGE_BYTE: u32 = 0x7f;

fn type_byte(kind: ResKind) -> u32 {
    match kind {
        ResKind::Id => 0x01,
        ResKind::Layout => 0x02,
        ResKind::Menu => 0x03,
        ResKind::String => 0x04,
    }
}

/// A bidirectional symbolic-name ⇄ numeric-ID table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceTable {
    /// Serialized as a list of pairs — JSON maps need string keys.
    #[serde(with = "pairs")]
    forward: BTreeMap<ResRef, u32>,
    #[serde(skip)]
    reverse: BTreeMap<u32, ResRef>,
}

mod pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<ResRef, u32>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&ResRef, u32)> = map.iter().map(|(r, &id)| (r, id)).collect();
        serde::Serialize::serialize(&entries, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<ResRef, u32>, D::Error> {
        let entries: Vec<(ResRef, u32)> = serde::Deserialize::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a resource, assigning the next free numeric ID in its type
    /// block; returns the (possibly pre-existing) numeric ID.
    pub fn intern(&mut self, res: &ResRef) -> u32 {
        if let Some(&id) = self.forward.get(res) {
            return id;
        }
        // The reverse index doubles as a per-type-block allocator: the
        // highest ID already assigned in this block determines the next
        // entry, without scanning the whole table. Deserialized tables
        // arrive with the reverse index empty (it is `#[serde(skip)]`),
        // so repair it before relying on it.
        if self.reverse.len() != self.forward.len() {
            self.rebuild_reverse();
        }
        let block = (PACKAGE_BYTE << 24) | (type_byte(res.kind) << 16);
        let next_entry = match self.reverse.range(block..=block | 0xffff).next_back() {
            Some((&high, _)) => (high - block) + 1,
            None => 0,
        };
        let id = block | next_entry;
        self.forward.insert(res.clone(), id);
        self.reverse.insert(id, res.clone());
        id
    }

    /// Looks up the numeric ID of a symbolic reference.
    pub fn id_of(&self, res: &ResRef) -> Option<u32> {
        self.forward.get(res).copied()
    }

    /// Looks up the symbolic reference behind a numeric ID.
    pub fn res_of(&self, id: u32) -> Option<&ResRef> {
        self.reverse.get(&id)
    }

    /// Number of interned resources.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Iterates over `(symbolic, numeric)` pairs in symbolic order.
    pub fn iter(&self) -> impl Iterator<Item = (&ResRef, u32)> {
        self.forward.iter().map(|(r, &id)| (r, id))
    }

    /// Rebuilds the reverse index — needed after deserialization, where the
    /// reverse map is skipped.
    pub fn rebuild_reverse(&mut self) {
        self.reverse = self.forward.iter().map(|(r, &id)| (id, r.clone())).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = ResourceTable::new();
        let a = t.intern(&ResRef::id("go"));
        let b = t.intern(&ResRef::id("go"));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_unique_across_kinds_and_names() {
        let mut t = ResourceTable::new();
        let ids = [
            t.intern(&ResRef::id("a")),
            t.intern(&ResRef::id("b")),
            t.intern(&ResRef::layout("a")),
            t.intern(&ResRef::menu("a")),
        ];
        let mut dedup = ids.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn numeric_format_is_aapt_like() {
        let mut t = ResourceTable::new();
        assert_eq!(t.intern(&ResRef::id("x")), 0x7f01_0000);
        assert_eq!(t.intern(&ResRef::id("y")), 0x7f01_0001);
        assert_eq!(t.intern(&ResRef::layout("main")), 0x7f02_0000);
    }

    #[test]
    fn reverse_lookup() {
        let mut t = ResourceTable::new();
        let r = ResRef::layout("main");
        let id = t.intern(&r);
        assert_eq!(t.res_of(id), Some(&r));
        assert_eq!(t.id_of(&r), Some(id));
    }

    #[test]
    fn intern_after_deserialize_self_heals_reverse_index() {
        let mut t = ResourceTable::new();
        t.intern(&ResRef::id("a"));
        t.intern(&ResRef::id("b"));
        let json = serde_json::to_string(&t).unwrap();
        let mut back: ResourceTable = serde_json::from_str(&json).unwrap();
        // No rebuild_reverse() — intern must repair the skipped index
        // itself rather than hand out a colliding ID.
        assert_eq!(back.intern(&ResRef::id("c")), 0x7f01_0002);
        assert_eq!(back.res_of(0x7f01_0000), Some(&ResRef::id("a")));
    }

    #[test]
    fn serde_roundtrip_with_reverse_rebuild() {
        let mut t = ResourceTable::new();
        let id = t.intern(&ResRef::id("go"));
        let json = serde_json::to_string(&t).unwrap();
        let mut back: ResourceTable = serde_json::from_str(&json).unwrap();
        back.rebuild_reverse();
        assert_eq!(back.res_of(id), Some(&ResRef::id("go")));
        assert_eq!(back, t);
    }
}
