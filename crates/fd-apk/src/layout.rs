//! Layout files: inflatable widget trees.
//!
//! A layout is what `setContentView` / `inflate` instantiate. Widgets carry
//! symbolic resource-IDs; the paper's Algorithm 3 matches the IDs that
//! appear both in a layout and in a class's code to decide which Activity
//! or Fragment a widget belongs to.

use serde::{Deserialize, Serialize};

/// The kind of a widget, a small but representative subset of the Android
/// view classes the paper's apps exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidgetKind {
    /// `android.widget.Button` — clickable by default.
    Button,
    /// `android.widget.ImageButton` — clickable by default (hamburger
    /// icons, action-bar items).
    ImageButton,
    /// `android.widget.TextView` — static text.
    TextView,
    /// `android.widget.EditText` — text input; the subject of input
    /// dependencies.
    EditText,
    /// `android.widget.CheckBox` — toggle input, clickable.
    CheckBox,
    /// `android.widget.ListView` — item list; items are modelled as
    /// children.
    ListView,
    /// A plain container (`LinearLayout`/`FrameLayout`).
    Group,
    /// A `ViewGroup` that hosts fragments (`R.id.fragment_container`).
    FragmentContainer,
    /// A `DrawerLayout` side panel — hidden until toggled (Fig. 2's
    /// "hidden slide menu").
    Drawer,
    /// A tab strip; tab children switch fragments (Fig. 1).
    TabBar,
    /// An action bar / toolbar hosting menu items.
    ActionBar,
    /// An embedded `WebView`.
    WebView,
}

impl WidgetKind {
    /// Whether widgets of this kind receive clicks by default.
    pub fn default_clickable(self) -> bool {
        matches!(self, WidgetKind::Button | WidgetKind::ImageButton | WidgetKind::CheckBox)
    }

    /// Whether this kind accepts text input.
    pub fn is_input(self) -> bool {
        matches!(self, WidgetKind::EditText | WidgetKind::CheckBox)
    }
}

/// One node of a layout's widget tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Widget {
    /// View class.
    pub kind: WidgetKind,
    /// Symbolic resource-ID name (`R.id.<id>`); anonymous widgets have none.
    pub id: Option<String>,
    /// Display text / label.
    pub text: String,
    /// Whether the widget reacts to clicks. Non-interaction widgets are
    /// ruled out by Algorithm 3.
    pub clickable: bool,
    /// Whether the widget is initially visible. Drawers start hidden.
    pub visible: bool,
    /// Child widgets.
    pub children: Vec<Widget>,
}

impl Widget {
    /// Creates a widget with kind-default clickability and visibility
    /// (drawers start hidden, everything else visible).
    pub fn new(kind: WidgetKind) -> Self {
        Widget {
            kind,
            id: None,
            text: String::new(),
            clickable: kind.default_clickable(),
            visible: !matches!(kind, WidgetKind::Drawer),
            children: Vec::new(),
        }
    }

    /// Sets the resource-ID name (builder style).
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// Sets the display text (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Overrides clickability (builder style).
    pub fn clickable(mut self, yes: bool) -> Self {
        self.clickable = yes;
        self
    }

    /// Adds a child (builder style).
    pub fn with_child(mut self, child: Widget) -> Self {
        self.children.push(child);
        self
    }

    /// Adds many children (builder style).
    pub fn with_children(mut self, children: impl IntoIterator<Item = Widget>) -> Self {
        self.children.extend(children);
        self
    }

    /// Depth-first iteration over this widget and all descendants.
    pub fn iter(&self) -> WidgetIter<'_> {
        WidgetIter { stack: vec![self] }
    }

    /// Finds a descendant (or self) by resource-ID name.
    pub fn find_by_id(&self, id: &str) -> Option<&Widget> {
        self.iter().find(|w| w.id.as_deref() == Some(id))
    }

    /// All resource-ID names declared in this subtree, in depth-first order.
    pub fn ids(&self) -> Vec<&str> {
        self.iter().filter_map(|w| w.id.as_deref()).collect()
    }
}

/// Depth-first widget iterator (pre-order, children visited left to right).
pub struct WidgetIter<'a> {
    stack: Vec<&'a Widget>,
}

impl<'a> Iterator for WidgetIter<'a> {
    type Item = &'a Widget;

    fn next(&mut self) -> Option<Self::Item> {
        let widget = self.stack.pop()?;
        // Push children in reverse so the leftmost is visited first.
        for child in widget.children.iter().rev() {
            self.stack.push(child);
        }
        Some(widget)
    }
}

/// A named layout file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// The layout resource name (`R.layout.<name>`).
    pub name: String,
    /// The root widget.
    pub root: Widget,
}

impl Layout {
    /// Creates a layout.
    pub fn new(name: impl Into<String>, root: Widget) -> Self {
        Layout { name: name.into(), root }
    }

    /// All resource-ID names this layout declares.
    pub fn widget_ids(&self) -> Vec<&str> {
        self.root.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Widget {
        Widget::new(WidgetKind::Group)
            .with_id("root")
            .with_child(Widget::new(WidgetKind::Button).with_id("go").with_text("GO"))
            .with_child(
                Widget::new(WidgetKind::Drawer)
                    .with_id("drawer")
                    .with_child(Widget::new(WidgetKind::TextView).with_id("item").clickable(true)),
            )
    }

    #[test]
    fn default_clickability_by_kind() {
        assert!(Widget::new(WidgetKind::Button).clickable);
        assert!(!Widget::new(WidgetKind::TextView).clickable);
        assert!(Widget::new(WidgetKind::CheckBox).clickable);
    }

    #[test]
    fn drawers_start_hidden() {
        assert!(!Widget::new(WidgetKind::Drawer).visible);
        assert!(Widget::new(WidgetKind::Group).visible);
    }

    #[test]
    fn iteration_is_preorder() {
        let t = tree();
        let ids: Vec<_> = t.iter().filter_map(|w| w.id.as_deref()).collect();
        assert_eq!(ids, vec!["root", "go", "drawer", "item"]);
    }

    #[test]
    fn find_by_id_descends() {
        let t = tree();
        assert_eq!(t.find_by_id("item").unwrap().kind, WidgetKind::TextView);
        assert!(t.find_by_id("missing").is_none());
    }

    #[test]
    fn layout_ids() {
        let l = Layout::new("main", tree());
        assert_eq!(l.widget_ids(), vec!["root", "go", "drawer", "item"]);
    }
}
