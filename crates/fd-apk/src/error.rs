//! Errors raised while packing or decompiling an APK container.

use fd_smali::ParseError;
use std::fmt;

/// An error produced by [`crate::container`] or [`crate::decompile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApkError {
    /// The byte stream does not start with the `FAPK` magic.
    BadMagic,
    /// The container version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The byte stream ended before a declared section was complete.
    Truncated,
    /// The app is protected by a packer; it cannot be decompiled. The
    /// paper excludes such apps from its dataset ("some apps were
    /// encrypted or protected (with packer), they cannot be analyzed").
    Packed,
    /// A section's payload failed to deserialize.
    Corrupt(String),
    /// The embedded smali text failed to parse.
    Smali(ParseError),
}

impl fmt::Display for ApkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApkError::BadMagic => write!(f, "not an FAPK container (bad magic)"),
            ApkError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            ApkError::Truncated => write!(f, "container truncated"),
            ApkError::Packed => write!(f, "app is packer-protected and cannot be decompiled"),
            ApkError::Corrupt(what) => write!(f, "corrupt section: {what}"),
            ApkError::Smali(e) => write!(f, "embedded smali does not parse: {e}"),
        }
    }
}

impl std::error::Error for ApkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApkError::Smali(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ApkError {
    fn from(e: ParseError) -> Self {
        ApkError::Smali(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ApkError::Packed.to_string().contains("packer"));
        assert!(ApkError::UnsupportedVersion(9).to_string().contains('9'));
    }

    #[test]
    fn smali_error_is_source() {
        use std::error::Error;
        let e = ApkError::Smali(ParseError::new(1, "x"));
        assert!(e.source().is_some());
        assert!(ApkError::Truncated.source().is_none());
    }
}
