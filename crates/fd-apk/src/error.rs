//! Errors raised while packing or decompiling an APK container.

use fd_smali::ParseError;
use std::fmt;

/// An error produced by [`crate::container`] or [`crate::decompile`].
///
/// Every variant that concerns the byte stream carries the byte offset it
/// was detected at ([`ApkError::offset`]), so a rejected container can be
/// quarantined with an actionable one-line diagnostic instead of a
/// backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApkError {
    /// The byte stream does not start with the `FAPK` magic.
    BadMagic,
    /// The container version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The byte stream ended before a fixed-size field was complete.
    Truncated {
        /// Byte offset the read started at.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's length field declares more payload than the stream
    /// holds — either the field was corrupted or the payload was cut.
    BadLengthField {
        /// Which section the length field belongs to.
        section: &'static str,
        /// Byte offset of the length field itself.
        offset: usize,
        /// The length the field declares.
        declared: usize,
        /// Payload bytes actually remaining after the field.
        available: usize,
    },
    /// The app is protected by a packer; it cannot be decompiled. The
    /// paper excludes such apps from its dataset ("some apps were
    /// encrypted or protected (with packer), they cannot be analyzed").
    Packed,
    /// A section's payload failed to deserialize.
    Corrupt {
        /// Which section failed.
        section: &'static str,
        /// What went wrong inside it.
        cause: CorruptCause,
    },
    /// The embedded smali text failed to parse.
    Smali(ParseError),
}

/// Why a section's payload was rejected. The typed source error is
/// stored as-is and only rendered when the error is actually displayed,
/// so the fuzz/quarantine path does not pay formatting allocations for
/// containers it is about to throw away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorruptCause {
    /// The section's JSON payload failed to parse.
    Json(serde_json::Error),
    /// The classes section is not valid UTF-8.
    Utf8(std::str::Utf8Error),
    /// Extra bytes follow the final section.
    TrailingBytes {
        /// How many bytes trail.
        count: usize,
    },
    /// A free-form reason, for callers outside the decode path.
    Message(String),
}

impl fmt::Display for CorruptCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptCause::Json(e) => write!(f, "{e}"),
            CorruptCause::Utf8(e) => write!(f, "not UTF-8: {e}"),
            CorruptCause::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last section")
            }
            CorruptCause::Message(m) => f.write_str(m),
        }
    }
}

impl ApkError {
    /// Shorthand for a [`ApkError::Corrupt`] value with a free-form
    /// reason.
    pub fn corrupt(section: &'static str, message: impl Into<String>) -> Self {
        ApkError::Corrupt { section, cause: CorruptCause::Message(message.into()) }
    }

    /// The byte offset the error was detected at, for the variants that
    /// track one.
    pub fn offset(&self) -> Option<usize> {
        match self {
            ApkError::Truncated { offset, .. } | ApkError::BadLengthField { offset, .. } => {
                Some(*offset)
            }
            ApkError::BadMagic => Some(0),
            _ => None,
        }
    }
}

impl fmt::Display for ApkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApkError::BadMagic => write!(f, "not an FAPK container (bad magic)"),
            ApkError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            ApkError::Truncated { offset, needed, available } => write!(
                f,
                "container truncated at byte {offset}: field needs {needed} bytes, {available} remain"
            ),
            ApkError::BadLengthField { section, offset, declared, available } => write!(
                f,
                "bad length field for {section} section at byte {offset}: declares {declared} bytes, {available} remain"
            ),
            ApkError::Packed => write!(f, "app is packer-protected and cannot be decompiled"),
            ApkError::Corrupt { section, cause } => {
                write!(f, "corrupt {section} section: {cause}")
            }
            ApkError::Smali(e) => write!(f, "embedded smali does not parse: {e}"),
        }
    }
}

impl std::error::Error for ApkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApkError::Smali(e) => Some(e),
            ApkError::Corrupt { cause: CorruptCause::Json(e), .. } => Some(e),
            ApkError::Corrupt { cause: CorruptCause::Utf8(e), .. } => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ApkError {
    fn from(e: ParseError) -> Self {
        ApkError::Smali(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ApkError::Packed.to_string().contains("packer"));
        assert!(ApkError::UnsupportedVersion(9).to_string().contains('9'));
        let t = ApkError::Truncated { offset: 12, needed: 4, available: 1 };
        assert!(t.to_string().contains("byte 12"));
        let l = ApkError::BadLengthField {
            section: "manifest",
            offset: 8,
            declared: 4096,
            available: 7,
        };
        assert!(l.to_string().contains("manifest"));
        assert!(l.to_string().contains("4096"));
    }

    #[test]
    fn offsets_are_reported() {
        assert_eq!(ApkError::Truncated { offset: 9, needed: 4, available: 0 }.offset(), Some(9));
        assert_eq!(
            ApkError::BadLengthField { section: "meta", offset: 40, declared: 9, available: 1 }
                .offset(),
            Some(40)
        );
        assert_eq!(ApkError::BadMagic.offset(), Some(0));
        assert_eq!(ApkError::Packed.offset(), None);
        assert_eq!(ApkError::corrupt("meta", "x").offset(), None);
    }

    #[test]
    fn smali_error_is_source() {
        use std::error::Error;
        let e = ApkError::Smali(ParseError::new(1, "x"));
        assert!(e.source().is_some());
        assert!(ApkError::BadMagic.source().is_none());
    }
}
