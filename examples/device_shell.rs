//! An interactive shell onto the simulated device — `adb shell` for the
//! reproduction. Handy for poking at generated apps by hand.
//!
//! ```sh
//! cargo run --release --example device_shell            # quickstart app
//! echo "widgets\nclick hamburger_main\nwidgets" | cargo run --release --example device_shell
//! ```

use fragdroid_repro::droidsim::{dump_hierarchy, Device};
use std::io::{BufRead, Write};

const HELP: &str = "commands:
  widgets              list visible widgets
  click <id>           click a widget
  text <id> <value…>   type into an EditText
  back                 hardware back
  swipe                edge swipe (opens a drawer)
  dismiss              click blank space (dismiss dialog/menu)
  reflect <class>      reflective fragment switch
  start <component>    am start -n (needs MAIN action)
  launch               restart from the launcher
  sig                  print the fragment-level state signature
  dump                 uiautomator-style XML of the hierarchy
  apis                 sensitive-API invocations so far
  quit";

fn main() {
    let gen = fragdroid_repro::appgen::templates::quickstart();
    let mut app = gen.app;
    app.manifest.add_main_action_everywhere();
    let mut device = Device::new(app);
    device.launch().expect("launch");
    println!("device shell on {} — 'help' for commands", device.app().package());
    print_state(&device);

    let stdin = std::io::stdin();
    loop {
        print!("> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        let arg = parts.next().unwrap_or("");
        let rest: String = parts.collect::<Vec<_>>().join(" ");

        let outcome = match cmd {
            "quit" | "exit" => break,
            "help" => {
                println!("{HELP}");
                continue;
            }
            "widgets" => {
                for w in device.visible_widgets() {
                    println!(
                        "  {:<28} {:?}{}{}",
                        w.id.unwrap_or_default(),
                        w.kind,
                        if w.clickable { "  [clickable]" } else { "" },
                        if w.text.is_empty() { String::new() } else { format!("  \"{}\"", w.text) },
                    );
                }
                continue;
            }
            "sig" => {
                print_state(&device);
                continue;
            }
            "dump" => {
                match device.current() {
                    Some(screen) => print!("{}", dump_hierarchy(screen)),
                    None => println!("(app not running)"),
                }
                continue;
            }
            "apis" => {
                for inv in device.invocations() {
                    println!("  {}/{} ← {:?}", inv.group, inv.name, inv.caller);
                }
                continue;
            }
            "click" => device.click(arg),
            "text" => device
                .enter_text(arg, &rest)
                .map(|()| fragdroid_repro::droidsim::EventOutcome::NoChange),
            "back" => device.back(),
            "swipe" => device.swipe_open_drawer(),
            "dismiss" => device.dismiss_overlay(),
            "reflect" => device.reflect_switch_fragment(arg),
            "start" => device.am_start(arg),
            "launch" => device.launch(),
            other => {
                println!("unknown command '{other}' — try 'help'");
                continue;
            }
        };
        match outcome {
            Ok(out) => println!("  → {out:?}"),
            Err(e) => println!("  ! {e}"),
        }
        print_state(&device);
    }
}

fn print_state(device: &Device) {
    match device.signature() {
        Some(sig) => println!("[{sig}]"),
        None => println!(
            "[not running{}]",
            device.crash_reason().map(|r| format!(": {r}")).unwrap_or_default()
        ),
    }
}
