//! Record & replay (the paper's §I prior technique), on the simulator: a
//! "human tester" session is recorded, saved as a JSON script, replayed on
//! a fresh device, and the divergence check demonstrated against a
//! modified app — the maintenance cost the paper says makes R&R "quite
//! expensive in the input collection and maintenance".
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use fragdroid_repro::appgen::templates;
use fragdroid_repro::droidsim::{replay, Device, Op, Recorder, ReplayOutcome};

fn main() {
    let gen = templates::quickstart();

    // --- record ---
    let mut rec = Recorder::new(Device::new(gen.app.clone()));
    rec.step(Op::Launch).unwrap();
    rec.step(Op::Click("hamburger_main".into())).unwrap();
    rec.step(Op::Click("menu_statsfragment".into())).unwrap();
    rec.step(Op::Click("btn_settings".into())).unwrap();
    rec.step(Op::EnterText { id: "input_settings_0".into(), text: "pin-1234".into() }).unwrap();
    rec.step(Op::Click("submit_settings_0".into())).unwrap();
    let trace = rec.finish();
    println!("recorded {} steps; script JSON:\n", trace.steps.len());
    println!("{}\n", trace.to_json());

    // --- replay on a fresh device ---
    let mut fresh = Device::new(gen.app.clone());
    match replay(&mut fresh, &trace) {
        ReplayOutcome::Faithful => println!("replay on the same app build: FAITHFUL ✓"),
        other => println!("unexpected: {other:?}"),
    }

    // --- replay against a changed app build ---
    // The developer renames the drawer entry's target fragment: the old
    // script now lands in a different fragment-level state.
    let mut changed = gen.app.clone();
    let main = changed.classes.get("com.example.quickstart.Main").unwrap().clone();
    let mut patched = main.clone();
    for method in &mut patched.methods {
        for stmt in &mut method.body {
            if let fragdroid_repro::smali::Stmt::TxnReplace { fragment, .. } = stmt {
                if fragment.as_str().ends_with("StatsFragment") {
                    *fragment = "com.example.quickstart.HomeFragment".into();
                }
            }
        }
    }
    changed.classes.insert(patched);
    let mut upgraded = Device::new(changed);
    match replay(&mut upgraded, &trace) {
        ReplayOutcome::Diverged { index, expected, actual } => {
            println!("\nreplay on the changed build: DIVERGED at step {index}");
            println!("  expected: {}", expected.map(|s| s.to_string()).unwrap_or_default());
            println!("  actual:   {}", actual.map(|s| s.to_string()).unwrap_or_default());
            println!("→ every app update invalidates recorded scripts; FragDroid regenerates its");
            println!("  test cases from the model instead.");
        }
        other => println!("unexpected: {other:?}"),
    }
}
