//! Builds the paper's Fig. 5 example AFTM by hand, then extracts a real
//! AFTM from a generated app, and prints both as Graphviz DOT.
//!
//! ```sh
//! cargo run --example aftm_graph | dot -Tsvg > aftm.svg   # if graphviz is installed
//! ```

use fragdroid_repro::aftm::{dot, Aftm, Edge};
use fragdroid_repro::appgen::random::{generate, GenConfig};

fn main() {
    // Fig. 5, by hand: an entry activity A0 with two child activities, a
    // fragment pair switched inside A0, and a fragment inside A2.
    let mut fig5 = Aftm::new();
    fig5.set_entry("app.A0");
    fig5.add_edge(Edge::e1("app.A0", "app.A1"));
    fig5.add_edge(Edge::e1("app.A0", "app.A2"));
    fig5.add_edge(Edge::e2("app.A0", "app.F0"));
    fig5.add_edge(Edge::e3("app.A0", "app.F0", "app.F1"));
    fig5.add_edge(Edge::e2("app.A2", "app.F2"));

    println!("// Fig. 5 example AFTM — E1 solid, E2 dashed, E3 dotted");
    println!("{}", dot::to_dot(&fig5));

    // The same model extracted automatically from a generated app.
    let gen = generate("example.app", &GenConfig::default(), 7);
    let info = fragdroid_repro::stat::extract(&gen.app, &gen.known_inputs);
    let (a, f) = info.counts();
    println!("// AFTM extracted from a generated app ({a} activities, {f} fragments)");
    println!("{}", dot::to_dot(&info.aftm));
}
