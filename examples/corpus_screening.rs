//! Privacy screening at corpus scale: find every app whose *fragments*
//! invoke location APIs — the class of behaviour activity-level tools
//! cannot attribute (the paper's malicious-code detection use case).
//!
//! ```sh
//! cargo run --release --example corpus_screening
//! ```

use fragdroid_repro::droidsim::Caller;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};
use std::time::Instant;

fn main() {
    let corpus = fragdroid_repro::appgen::corpus::corpus_217(1);
    let analyzable: Vec<_> = corpus.into_iter().filter(|g| !g.app.meta.packed).collect();
    println!(
        "screening {} analyzable apps for location access from fragments…\n",
        analyzable.len()
    );

    let start = Instant::now();
    let mut hits = Vec::new();
    for gen in &analyzable {
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let offenders: Vec<String> = report
            .api_invocations
            .iter()
            .filter(|inv| inv.group == "location")
            .filter_map(|inv| match &inv.caller {
                Caller::Fragment { fragment, host } => Some(format!(
                    "{}/{} ← fragment {} (in {})",
                    inv.group,
                    inv.name,
                    fragment.simple_name(),
                    host.simple_name()
                )),
                Caller::Activity(_) => None,
            })
            .collect();
        if !offenders.is_empty() {
            hits.push((gen.app.package().to_string(), gen.app.meta.category.clone(), offenders));
        }
    }

    for (package, category, offenders) in &hits {
        println!("{package}  [{category}]");
        for line in offenders {
            println!("    {line}");
        }
    }
    println!(
        "\n{} of {} apps access location from fragment code \
         ({:.2}s for the whole corpus — activity-level tools would attribute all of it to the wrong element or miss it).",
        hits.len(),
        analyzable.len(),
        start.elapsed().as_secs_f64(),
    );
}
