//! The paper's security showcase: map sensitive-API invocations to the UI
//! elements (Activities *and* Fragments) that trigger them — the analysis
//! an activity-level tool cannot complete.
//!
//! ```sh
//! cargo run --example sensitive_api_audit
//! ```

use fragdroid_repro::droidsim::Caller;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};
use std::collections::BTreeMap;

fn main() {
    // Audit one of the evaluation apps end to end, through the packed
    // container (exactly the artifact an analyst would receive).
    let (spec, gen) = fd_appgen::paper_apps::all_paper_apps().remove(7); // com.inditex.zara
    println!("Auditing {} ({} download band)\n", spec.package, gen.app.meta.downloads_band());

    let bytes = fragdroid_repro::apk::pack(&gen.app);
    println!("container size: {} bytes", bytes.len());

    let report = FragDroid::new(FragDroidConfig::default())
        .run_apk(&bytes, &gen.known_inputs)
        .expect("decompile + run");

    // Group invocations by API, listing the UI elements behind each.
    let mut by_api: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for inv in &report.api_invocations {
        let caller = match &inv.caller {
            Caller::Activity(a) => format!("activity {}", a.simple_name()),
            Caller::Fragment { fragment, host } => {
                format!("fragment {} (in {})", fragment.simple_name(), host.simple_name())
            }
        };
        by_api.entry(format!("{}/{}", inv.group, inv.name)).or_default().push(caller);
    }

    println!("\n{} distinct sensitive APIs invoked:\n", by_api.len());
    for (api, callers) in &by_api {
        println!("{api}");
        for caller in callers {
            println!("    ← {caller}");
        }
    }

    let (total, frag, frag_only) = report.api_relation_counts();
    println!("\ninvocation relations: {total}");
    println!("fragment-associated:  {frag} ({:.0}%)", frag as f64 / total as f64 * 100.0);
    println!(
        "invisible to activity-level tools: {frag_only} ({:.0}%)",
        frag_only as f64 / total as f64 * 100.0
    );
}
