//! Exports the test cases a FragDroid run generated as a Robotium Java
//! class — the §VI-B artifact an analyst would install on a phone.
//!
//! ```sh
//! cargo run --release --example export_test_suite
//! ```

use fragdroid_repro::appgen::templates;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};

fn main() {
    let gen = templates::quickstart();
    let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);

    println!(
        "// {} test cases generated while exploring {} ({} events)\n",
        report.test_cases_run,
        gen.app.package(),
        report.events_injected
    );
    println!("{}", report.to_robotium_java());

    println!("// Coverage timeline (events → activities/fragments visited):");
    for (events, acts, frags) in &report.timeline {
        println!("//   {events:>5} events → {acts} activities, {frags} fragments");
    }
}
