//! The paper's two motivating scenarios (Fig. 1 and Fig. 2), driven live
//! on the simulated device, showing exactly what an activity-level tool
//! is blind to.
//!
//! ```sh
//! cargo run --example motivating_scenarios
//! ```

use fragdroid_repro::appgen::templates;
use fragdroid_repro::baselines::{ActivityExplorer, UiExplorer};
use fragdroid_repro::droidsim::Device;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};

fn main() {
    fig1_tab_transformation();
    fig2_hidden_slide_menu();
}

/// Fig. 1: clicking a tab triggers a Fragment transformation — "the
/// object of the rest testing operations is changed while the Activity is
/// not."
fn fig1_tab_transformation() {
    println!("=== Fig. 1: Fragment transformation via tabs ===\n");
    let gen = templates::tabbed_categories();
    let mut device = Device::new(gen.app.clone());
    device.launch().expect("launch");
    println!("after launch:        {}", device.signature().unwrap());

    device.click("tab_recentfragment").expect("tab click");
    println!("after clicking tab:  {}", device.signature().unwrap());
    println!(
        "→ same Activity, different Fragment: an activity-level model calls these ONE state.\n"
    );
}

/// Fig. 2: two fragments bridged only by a hidden slide menu, plus the
/// coverage both tools actually achieve.
fn fig2_hidden_slide_menu() {
    println!("=== Fig. 2: Fragment switching through a hidden slide menu ===\n");
    let gen = templates::nav_drawer_wallpapers();
    let mut device = Device::new(gen.app.clone());
    device.launch().expect("launch");
    println!("visible widgets at launch:");
    for w in device.visible_widgets() {
        println!("  {:?} {:?}", w.kind, w.id);
    }
    device.click("hamburger_gallery").expect("open drawer");
    println!("\nafter opening the drawer:");
    for w in device.visible_widgets() {
        println!("  {:?} {:?}", w.kind, w.id);
    }

    let fd = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
    let mbt = ActivityExplorer::default().explore(&gen.app, &gen.known_inputs);
    println!(
        "\nFragDroid visited fragments:    {:?}",
        fd.visited_fragments.iter().map(|f| f.simple_name().to_string()).collect::<Vec<_>>()
    );
    println!(
        "Activity-MBT visited fragments: {:?}",
        mbt.visited_fragments.iter().map(|f| f.simple_name().to_string()).collect::<Vec<_>>()
    );
    println!("→ the drawer-only FavoritesFragment is exactly what the traditional tool misses.");
}
