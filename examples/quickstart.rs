//! Quickstart: build a small app, run FragDroid on it, and read the
//! results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fragdroid_repro::appgen::templates;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};

fn main() {
    // A small app: a drawer-based main screen with two fragments, a
    // settings screen behind a button, and an account screen behind a
    // PIN-gated login whose secret is in the input-dependency data.
    let gen = templates::quickstart();
    println!("App under test: {}", gen.app.package());
    println!(
        "  {} activities, {} layouts, {} classes\n",
        gen.app.manifest.activities.len(),
        gen.app.layouts.len(),
        gen.app.classes.len()
    );

    // Run the full pipeline: static extraction, then evolutionary
    // test-case generation on the simulated device.
    let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);

    let a = report.activity_coverage();
    let f = report.fragment_coverage();
    println!("Activity coverage:  {}/{} ({:.1}%)", a.visited, a.sum, a.rate());
    println!("Fragment coverage:  {}/{} ({:.1}%)", f.visited, f.sum, f.rate());
    println!("Test cases run:     {}", report.test_cases_run);
    println!("Events injected:    {}", report.events_injected);
    println!("Crashes observed:   {}", report.crashes);

    println!("\nSensitive APIs detected (API ← caller):");
    for inv in &report.api_invocations {
        println!("  {}/{} ← {:?}", inv.group, inv.name, inv.caller);
    }

    println!("\nFinal AFTM (Graphviz DOT):\n");
    println!("{}", fragdroid_repro::aftm::dot::to_dot(&report.aftm));
}
