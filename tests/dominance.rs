//! Cross-tool properties over randomly generated apps: FragDroid's
//! coverage dominates the activity-level baseline, and all reports stay
//! internally consistent.

use fragdroid_repro::baselines::{ActivityExplorer, UiExplorer};
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};

#[test]
fn fragdroid_dominates_activity_mbt_on_random_apps() {
    for seed in 0..16u64 {
        let gen = fragdroid_repro::appgen::random::generate(
            "dom.app",
            &fragdroid_repro::appgen::random::GenConfig::default(),
            seed,
        );
        let fd = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let mbt = ActivityExplorer::default().explore(&gen.app, &gen.known_inputs);

        assert!(
            fd.visited_activities.len() >= mbt.visited_activities.len(),
            "seed {seed}: MBT beat FragDroid on activities ({} vs {})",
            mbt.visited_activities.len(),
            fd.visited_activities.len(),
        );
        assert!(
            fd.visited_fragments.len() >= mbt.visited_fragments.len(),
            "seed {seed}: MBT beat FragDroid on fragments ({} vs {})",
            mbt.visited_fragments.len(),
            fd.visited_fragments.len(),
        );
        assert!(
            fd.api_invocations.len() >= mbt.api_invocations.len(),
            "seed {seed}: MBT detected more API relations",
        );
    }
}

#[test]
fn ablated_fragdroid_never_beats_full_fragdroid() {
    for seed in [2u64, 5, 11, 23] {
        let gen = fragdroid_repro::appgen::random::generate(
            "abl.app",
            &fragdroid_repro::appgen::random::GenConfig::default(),
            seed,
        );
        let full = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        for config in [
            FragDroidConfig::default().without_reflection(),
            FragDroidConfig::default().without_force_start(),
            FragDroidConfig::default().without_input_deps(),
        ] {
            let ablated = FragDroid::new(config.clone()).run(&gen.app, &gen.known_inputs);
            assert!(
                ablated.visited_activities.len() <= full.visited_activities.len()
                    && ablated.visited_fragments.len() <= full.visited_fragments.len(),
                "seed {seed}: ablation {config:?} exceeded the full tool"
            );
        }
    }
}

#[test]
fn coverage_columns_are_internally_consistent() {
    for seed in 0..10u64 {
        let gen = fragdroid_repro::appgen::random::generate(
            "cons.app",
            &fragdroid_repro::appgen::random::GenConfig::default(),
            seed,
        );
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let f = report.fragment_coverage();
        let v = report.fragments_in_visited_coverage();
        // Every visited fragment lives in a visited activity, so the FiVA
        // visited count equals the fragment visited count…
        assert_eq!(v.visited, f.visited, "seed {seed}");
        // …and FiVA's sum is sandwiched between them.
        assert!(v.sum >= v.visited && v.sum <= f.sum, "seed {seed}: {v:?} vs {f:?}");
    }
}
