//! The generated test cases are real artifacts: replaying the scripts a
//! FragDroid run produced, on a fresh device, reproduces the run's
//! coverage. This is the property that makes model-based test cases
//! reusable where record-and-replay scripts rot.

use fragdroid_repro::droidsim::{script::run_script, Device, EventOutcome};
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};
use std::collections::BTreeSet;

fn replay_coverage(
    app: &fragdroid_repro::apk::AndroidApp,
    scripts: &[fragdroid_repro::droidsim::TestScript],
) -> (BTreeSet<String>, BTreeSet<String>) {
    // The tool ran against the manifest-rewritten install; replay the same.
    let mut installed = app.clone();
    installed.manifest.add_main_action_everywhere();
    let mut device = Device::new(installed);
    let mut activities = BTreeSet::new();
    let mut fragments = BTreeSet::new();
    for script in scripts {
        let report = run_script(&mut device, script);
        for step in &report.steps {
            if let Ok(EventOutcome::UiChanged { to, .. }) = &step.result {
                activities.insert(to.activity.as_str().to_string());
            }
        }
        // Observe the settled screen like an instrumentation runner would.
        if let Some(screen) = device.current() {
            activities.insert(screen.activity.as_str().to_string());
            for (_, f) in screen.manager_fragments() {
                fragments.insert(f.as_str().to_string());
            }
        }
    }
    (activities, fragments)
}

#[test]
fn replaying_generated_scripts_reproduces_coverage() {
    for gen in [
        fragdroid_repro::appgen::templates::quickstart(),
        fragdroid_repro::appgen::templates::nav_drawer_wallpapers(),
        fragdroid_repro::appgen::templates::ecommerce(),
    ] {
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let (replayed_acts, replayed_frags) = replay_coverage(&gen.app, &report.scripts);

        for activity in &report.visited_activities {
            assert!(
                replayed_acts.contains(activity.as_str()),
                "{}: activity {activity} visited live but not reproduced by the scripts",
                gen.app.package(),
            );
        }
        for fragment in &report.visited_fragments {
            assert!(
                replayed_frags.contains(fragment.as_str()),
                "{}: fragment {fragment} visited live but not reproduced by the scripts",
                gen.app.package(),
            );
        }
    }
}

#[test]
fn run_report_json_roundtrip() {
    let gen = fragdroid_repro::appgen::templates::quickstart();
    let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
    let json = serde_json::to_string(&report).expect("serializes");
    let back: fragdroid_repro::tool::RunReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.visited_activities, report.visited_activities);
    assert_eq!(back.visited_fragments, report.visited_fragments);
    assert_eq!(back.api_invocations, report.api_invocations);
    assert_eq!(back.scripts, report.scripts);
    assert_eq!(back.timeline, report.timeline);
    assert_eq!(back.aftm, report.aftm);
}
