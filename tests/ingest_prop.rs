//! Cross-crate ingestion properties: structure-aware mutants never
//! panic the decode → extract pipeline, and well-formed containers
//! produce byte-identical reports however (and how often) they are run.

use bytes::Bytes;
use fragdroid_repro::appgen::random::{generate, GenConfig};
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_gen_config() -> GenConfig {
    GenConfig { activities: 3, fragments: 3, ..GenConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fd-fuzz byte-level mutator thrown at freshly packed apps
    /// never panics decompile, and whatever still decodes never panics
    /// static extraction — the same invariant the campaign driver
    /// asserts, here over per-seed random apps instead of templates.
    #[test]
    fn structure_aware_mutants_never_panic_decode_or_extract(seed in 0u64..300) {
        let gen = generate("prop.ingest", &small_gen_config(), seed);
        let packed = fragdroid_repro::apk::pack(&gen.app).to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mutant = fragdroid_repro::fuzz::mutate_bytes(&packed, &mut rng);
        if let Ok(app) = fragdroid_repro::apk::decompile(&Bytes::from(mutant)) {
            let _ = fragdroid_repro::stat::extract(&app, &Default::default());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A well-formed container reports byte-identically run after run,
    /// and identically whether it enters through the container suite
    /// (decode at the frontier) or as an already-decoded app.
    #[test]
    fn well_formed_containers_report_byte_identically(seed in 0u64..1000) {
        let gen = generate("prop.ingest", &small_gen_config(), seed);
        let config = FragDroidConfig { event_budget: 2_000, ..FragDroidConfig::default() };

        let containers =
            vec![(fragdroid_repro::apk::pack(&gen.app), gen.known_inputs.clone())];
        let first = fragdroid_repro::tool::run_container_suite_outcomes(&containers, &config);
        let second = fragdroid_repro::tool::run_container_suite_outcomes(&containers, &config);
        let first_report = first.outcomes[0].report().expect("well-formed input completes");
        let second_report = second.outcomes[0].report().expect("well-formed input completes");
        let first_json = serde_json::to_string(first_report).expect("report serializes");
        prop_assert_eq!(
            &first_json,
            &serde_json::to_string(second_report).expect("report serializes")
        );

        let direct = FragDroid::new(config).run(&gen.app, &gen.known_inputs);
        prop_assert_eq!(
            &first_json,
            &serde_json::to_string(&direct).expect("report serializes")
        );
    }
}
