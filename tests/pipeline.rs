//! Cross-crate integration tests: the whole pipeline from app synthesis
//! through packing, decompilation, static extraction, exploration and
//! reporting, plus invariants that tie the layers together.

use fragdroid_repro::aftm::NodeId;
use fragdroid_repro::appgen::random::{generate, GenConfig};
use fragdroid_repro::appgen::templates;
use fragdroid_repro::droidsim::Device;
use fragdroid_repro::tool::{FragDroid, FragDroidConfig};

#[test]
fn full_pipeline_from_container_bytes() {
    let gen = templates::quickstart();
    // Pack → decompile → static → dynamic, exactly the paper's Fig. 4 flow.
    let bytes = fragdroid_repro::apk::pack(&gen.app);
    let decompiled = fragdroid_repro::apk::decompile(&bytes).expect("decompile");
    assert_eq!(decompiled, gen.app, "decompilation is lossless");

    let report = FragDroid::new(FragDroidConfig::default()).run(&decompiled, &gen.known_inputs);
    assert_eq!(report.activity_coverage().rate(), 100.0);
    assert_eq!(report.fragment_coverage().rate(), 100.0);
}

#[test]
fn visited_sets_are_bounded_by_static_sums() {
    for seed in 0..12 {
        let gen = generate("inv.app", &GenConfig::default(), seed);
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let a = report.activity_coverage();
        let f = report.fragment_coverage();
        let v = report.fragments_in_visited_coverage();
        assert!(a.visited <= a.sum, "seed {seed}: activities {a:?}");
        assert!(f.visited <= f.sum, "seed {seed}: fragments {f:?}");
        assert!(v.visited <= v.sum, "seed {seed}: fiva {v:?}");
        assert!(v.sum <= f.sum, "seed {seed}: fiva sum exceeds fragment sum");
        // Every visited activity was statically known or force-added; the
        // final AFTM contains and marks it.
        for act in &report.visited_activities {
            let node = NodeId::Activity(act.clone());
            assert!(report.aftm.contains(&node), "seed {seed}: {act} missing from AFTM");
            assert!(report.aftm.is_visited(&node), "seed {seed}: {act} not marked");
        }
    }
}

#[test]
fn aftm_evolution_is_monotone() {
    for seed in [3u64, 17, 99] {
        let gen = generate("evo.app", &GenConfig::default(), seed);
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        // Every statically found edge survives into the evolved model.
        for edge in report.static_info.aftm.edges() {
            assert!(
                report.aftm.edges().any(|e| e == edge),
                "seed {seed}: static edge {edge:?} lost during evolution"
            );
        }
        // And every statically found node too.
        for node in report.static_info.aftm.nodes() {
            assert!(report.aftm.contains(node), "seed {seed}: node {node} lost");
        }
    }
}

#[test]
fn resource_dependency_agrees_with_runtime_ownership() {
    // The static Algorithm-3 attribution must agree with the simulator's
    // ground truth: a widget the static phase assigns to fragment F must,
    // at runtime, live inside F's inflated pane.
    let gen = templates::quickstart();
    let info = fragdroid_repro::stat::extract(&gen.app, &gen.known_inputs);
    let mut device = Device::new(gen.app.clone());
    device.launch().unwrap();

    let screen = device.current().unwrap();
    for widget in screen.visible_widgets() {
        let Some(id) = &widget.id else { continue };
        let Some(owner) = info.resource_dep.owner_of(id) else { continue };
        match owner {
            fragdroid_repro::stat::UiOwner::Fragment(f) => {
                assert_eq!(
                    screen.owner_fragment_of(id),
                    Some(f),
                    "static says {id} belongs to fragment {f}, runtime disagrees"
                );
            }
            fragdroid_repro::stat::UiOwner::Activity(_) => {
                assert_eq!(
                    screen.owner_fragment_of(id),
                    None,
                    "static says {id} is activity-owned, runtime found a fragment"
                );
            }
        }
    }
}

#[test]
fn monitor_only_records_catalog_apis_with_real_callers() {
    for seed in 0..6 {
        let gen = generate("mon.app", &GenConfig::default(), seed);
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        for inv in &report.api_invocations {
            assert!(
                fragdroid_repro::droidsim::monitor::is_sensitive(&inv.group, &inv.name),
                "seed {seed}: non-catalog API recorded"
            );
            // Callers are classes that actually exist in the app.
            let class = match &inv.caller {
                fragdroid_repro::droidsim::Caller::Activity(a) => a,
                fragdroid_repro::droidsim::Caller::Fragment { fragment, .. } => fragment,
            };
            assert!(gen.app.classes.contains(class.as_str()), "seed {seed}: ghost caller");
        }
    }
}

#[test]
fn explorer_stack_agrees_across_tools_on_fragment_free_apps() {
    // On an app with no fragments at all, FragDroid and the activity-level
    // baseline see the same world and should reach the same activities.
    let config = GenConfig { fragments: 0, p_gate: 0.0, ..GenConfig::default() };
    for seed in 0..6 {
        let gen = generate("flat.app", &config, seed);
        let fd = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let mbt = fragdroid_repro::baselines::ActivityExplorer::default()
            .explore(&gen.app, &gen.known_inputs);
        use fragdroid_repro::baselines::UiExplorer as _;
        assert_eq!(
            fd.visited_activities, mbt.visited_activities,
            "seed {seed}: fragment-free app should equalize the tools"
        );
    }
}
