//! Integration tests asserting the paper's headline numbers end to end —
//! the executable form of EXPERIMENTS.md.

use fragdroid_repro::report::table1::{averages, run_table1, PAPER_TABLE1};
use fragdroid_repro::report::table2::build_table2;

#[test]
fn headline_numbers_reproduce() {
    // Table I.
    let results = run_table1();
    let rows: Vec<_> = results.iter().map(|(r, _)| r.clone()).collect();
    for row in &rows {
        let (_, (pa_v, pa_s), (pf_v, pf_s), _) =
            PAPER_TABLE1.iter().find(|(p, ..)| *p == row.package).expect("paper row");
        assert_eq!(row.activities.sum, *pa_s, "{}: activity sum", row.package);
        assert_eq!(row.fragments.sum, *pf_s, "{}: fragment sum", row.package);
        assert_eq!(row.activities.visited, *pa_v, "{}: activity visited", row.package);
        assert_eq!(row.fragments.visited, *pf_v, "{}: fragment visited", row.package);
    }
    let (a, f, fiva) = averages(&rows);
    assert!((a - 71.94).abs() < 1.0, "activity average {a:.2}% vs paper 71.94%");
    assert!((f - 66.0).abs() < 1.0, "fragment average {f:.2}% vs paper 66%");
    assert!(fiva > 50.0, "paper: fragments-in-visited average is 'more than 50%'");
    // "for a third of tested apps, this coverage rate has reached 100%"
    let full = rows.iter().filter(|r| r.fragments_in_visited.rate() >= 100.0).count();
    assert!(full * 3 >= rows.len(), "{full}/15 apps at 100% fiva; paper says ≥ a third");

    // Table II, from the same runs.
    let reports: Vec<_> = results.into_iter().map(|(row, rep)| (row.package, rep)).collect();
    let t2 = build_table2(&reports);
    assert_eq!(t2.distinct_apis(), 46);
    assert_eq!(t2.total_invocations, 269);
    assert!((t2.fragment_share() - 0.49).abs() < 0.02);
    assert!(t2.missed_by_activity_tools() >= 0.096);
}

#[test]
fn corpus_study_reproduces() {
    let corpus = fragdroid_repro::appgen::corpus::corpus_217(1);
    let study = fragdroid_repro::report::study::corpus_study(&corpus);
    assert_eq!(study.total, 217);
    assert!((study.usage_pct() - 91.0).abs() < 1.0, "usage {:.1}%", study.usage_pct());
    assert_eq!(study.per_category.len(), 27);
}
