//! Byte-identity pinning for the zero-copy decode path: the borrowed
//! [`ContainerView`] pipeline and the owned [`decompile`] wrapper must
//! agree exactly — the same app on well-formed containers, the same
//! typed error (section and offset included, via `ApkError`'s `Eq`) on
//! rejects — across the full 217-app corpus and structure-aware fuzz
//! mutants. Also pins `pack_into` (the buffer-reusing fingerprint path)
//! to emit bytes identical to `pack`.

use bytes::{Bytes, BytesMut};
use fragdroid_repro::apk::{self, ContainerView};
use fragdroid_repro::appgen::random::{generate, GenConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Decode through the borrowed path end to end, erasing the lifetime by
/// building the owned app — the exact pipeline `decompile` wraps, but
/// driven independently so a future divergence between the two entry
/// points cannot hide behind delegation.
fn decode_borrowed(bytes: &[u8]) -> Result<apk::AndroidApp, apk::ApkError> {
    Ok(ContainerView::parse(bytes)?.decode()?.into_app())
}

#[test]
fn corpus_containers_decode_identically_on_both_paths() {
    let corpus = fragdroid_repro::appgen::corpus::corpus_217(1);
    assert_eq!(corpus.len(), 217);

    let mut reused = BytesMut::new();
    let mut analyzable = 0usize;
    let mut rejected = 0usize;
    for gen in &corpus {
        let bytes = apk::pack(&gen.app);
        // The buffer-reusing packer emits the exact bytes of the
        // allocating one — the checkpoint fingerprint depends on this.
        apk::pack_into(&gen.app, &mut reused);
        assert_eq!(
            &reused[..],
            &bytes[..],
            "pack_into diverges from pack for {}",
            gen.app.manifest.package
        );

        let owned = apk::decompile(&bytes);
        let borrowed = decode_borrowed(&bytes);
        match (owned, borrowed) {
            (Ok(owned_app), Ok(borrowed_app)) => {
                assert_eq!(
                    owned_app, borrowed_app,
                    "decoded apps diverge for {}",
                    gen.app.manifest.package
                );
                // Decode → re-pack is the identity on the container
                // bytes themselves, through the borrowed path too.
                assert_eq!(
                    &apk::pack(&borrowed_app)[..],
                    &bytes[..],
                    "repack of borrowed decode diverges for {}",
                    gen.app.manifest.package
                );
                analyzable += 1;
            }
            // The corpus' packed/"encrypted" slice: both paths must
            // reject with the identical typed error.
            (Err(owned_err), Err(borrowed_err)) => {
                assert_eq!(owned_err, borrowed_err);
                rejected += 1;
            }
            (owned, borrowed) => panic!(
                "paths disagree for {}: owned={owned:?} borrowed={borrowed:?}",
                gen.app.manifest.package
            ),
        }
    }
    // The corpus always contains both populations, so both arms ran.
    assert!(analyzable > 0 && rejected > 0, "analyzable={analyzable} rejected={rejected}");
    assert_eq!(analyzable + rejected, 217);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structure-aware mutants — truncations, bit flips, length
    /// corruptions — decode to the same `Ok`/`Err` on both paths, with
    /// equal apps on success and equal typed errors (same variant,
    /// section, cause and offset) on rejection.
    #[test]
    fn mutants_decode_identically_on_both_paths(seed in 0u64..400) {
        let config = GenConfig { activities: 3, fragments: 3, ..GenConfig::default() };
        let gen = generate("prop.zerocopy", &config, seed);
        let packed = apk::pack(&gen.app).to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
        let mutant = fragdroid_repro::fuzz::mutate_bytes(&packed, &mut rng);

        let owned = apk::decompile(&Bytes::from(mutant.clone()));
        let borrowed = decode_borrowed(&mutant);
        match (owned, borrowed) {
            (Ok(owned_app), Ok(borrowed_app)) => prop_assert_eq!(owned_app, borrowed_app),
            (Err(owned_err), Err(borrowed_err)) => prop_assert_eq!(owned_err, borrowed_err),
            (owned, borrowed) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree: owned={owned:?} borrowed={borrowed:?}"
                )));
            }
        }
    }
}
