//! Scale test: every analyzable corpus app's code survives a full
//! print → parse round trip — the decompiler path at corpus size.

use fragdroid_repro::smali::{parser, printer};

#[test]
fn corpus_wide_smali_roundtrip() {
    let corpus = fragdroid_repro::appgen::corpus::corpus_217(1);
    let mut classes_checked = 0usize;
    for gen in corpus.iter().filter(|g| !g.app.meta.packed) {
        let text: String =
            gen.app.classes.iter().map(printer::print_class).collect::<Vec<_>>().join("\n");
        let parsed =
            parser::parse_classes(&text).unwrap_or_else(|e| panic!("{}: {e}", gen.app.package()));
        assert_eq!(parsed.len(), gen.app.classes.len(), "{}", gen.app.package());
        for class in parsed {
            assert_eq!(Some(&class), gen.app.classes.get(class.name.as_str()));
            classes_checked += 1;
        }
    }
    assert!(classes_checked > 1_000, "only {classes_checked} classes checked");
}
