//! Streaming-serializer identity: `serde_json::to_string` now streams
//! through `Serialize::write_json` instead of building a `Value` tree,
//! and the two must stay byte-identical — the checkpoint journal's
//! checksummed lines and the container fingerprint both hash these
//! bytes. Each case here compares the streamed string against the tree
//! render (`to_value().render_json(false)`) on an edge the fast path
//! could plausibly get wrong.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

fn assert_stream_matches_tree<T: Serialize>(value: &T) {
    let mut streamed = String::new();
    value.write_json(&mut streamed);
    let tree = value.to_value().render_json(false);
    assert_eq!(streamed, tree);
    assert_eq!(serde_json::to_string(value).expect("serializes"), tree);
}

#[test]
fn numbers_stream_identically() {
    assert_stream_matches_tree(&0u8);
    assert_stream_matches_tree(&u64::MAX);
    assert_stream_matches_tree(&i64::MIN);
    assert_stream_matches_tree(&-1i32);
    // u128/i128 beyond the u64/i64 range fall back to the float render.
    assert_stream_matches_tree(&(u64::MAX as u128 + 1));
    assert_stream_matches_tree(&(i64::MIN as i128 - 1));
    // Float formatting: integral values keep a trailing ".1"-style
    // fraction, non-integral print shortest-roundtrip, non-finite are
    // null — all three shapes must match the tree exactly.
    assert_stream_matches_tree(&1.0f64);
    assert_stream_matches_tree(&-0.0f64);
    assert_stream_matches_tree(&1.5f64);
    assert_stream_matches_tree(&0.1f32);
    assert_stream_matches_tree(&f64::NAN);
    assert_stream_matches_tree(&f64::INFINITY);
    assert_stream_matches_tree(&f64::NEG_INFINITY);
    assert_stream_matches_tree(&2.0f64.powi(63));
}

#[test]
fn strings_and_chars_stream_identically() {
    assert_stream_matches_tree(&"");
    assert_stream_matches_tree(&"plain");
    assert_stream_matches_tree(&"quote\" backslash\\ newline\n tab\t nul\0");
    assert_stream_matches_tree(&"\u{1}\u{1f}\u{7f} é 漢 🦀");
    assert_stream_matches_tree(&String::from("owned \"s\""));
    assert_stream_matches_tree(&'a');
    assert_stream_matches_tree(&'"');
    assert_stream_matches_tree(&'\n');
    assert_stream_matches_tree(&'🦀');
}

#[test]
fn containers_stream_identically() {
    assert_stream_matches_tree(&Vec::<u32>::new());
    assert_stream_matches_tree(&vec![1u32, 2, 3]);
    assert_stream_matches_tree(&[1.5f64, f64::NAN]);
    assert_stream_matches_tree(&Option::<u32>::None);
    assert_stream_matches_tree(&Some(7u32));
    assert_stream_matches_tree(&Some(Option::<u32>::None));
    assert_stream_matches_tree(&(1u8, "two", 3.0f64));
    assert_stream_matches_tree(&BTreeSet::from(["b", "a"]));
    assert_stream_matches_tree(&Box::new(vec![Some(1u8), None]));
}

#[test]
fn integer_keyed_maps_sort_by_rendered_key() {
    // The tree path renders keys to strings and sorts lexically, so
    // integer keys order as "10" < "2" — the stream must reproduce that,
    // not the BTreeMap's numeric order.
    let map: BTreeMap<u32, &str> = BTreeMap::from([(2, "two"), (10, "ten"), (1, "one")]);
    assert_stream_matches_tree(&map);
    let tree = map.to_value().render_json(false);
    assert_eq!(tree, r#"{"1":"one","10":"ten","2":"two"}"#);
    // String keys needing escapes still render as JSON string keys.
    let escaped: BTreeMap<String, u8> = BTreeMap::from([("a\"b".to_string(), 1)]);
    assert_stream_matches_tree(&escaped);
    assert_stream_matches_tree(&BTreeMap::<String, u8>::new());
}

#[derive(Serialize, Deserialize, Debug, PartialEq)]
struct Record {
    // Declared out of key order on purpose: the derive must emit sorted
    // keys to match the sorted `Map` the tree path builds.
    zeta: f64,
    alpha: String,
    middle: Vec<u8>,
    #[serde(skip)]
    #[allow(dead_code)]
    skipped: u64,
    nested: Option<Box<Record>>,
}

#[derive(Serialize, Deserialize, Debug, PartialEq)]
enum Shape {
    Unit,
    Tuple(u32),
    Wide(u32, String),
    Named { y: f64, x: f64 },
}

#[test]
fn derived_types_stream_identically() {
    let record = Record {
        zeta: 2.0,
        alpha: "a\"b".into(),
        middle: vec![1, 2],
        skipped: 99,
        nested: Some(Box::new(Record {
            zeta: f64::NAN,
            alpha: String::new(),
            middle: vec![],
            skipped: 0,
            nested: None,
        })),
    };
    assert_stream_matches_tree(&record);
    // Keys come out sorted and the skipped field is absent.
    let json = serde_json::to_string(&record).expect("serializes");
    assert!(json.starts_with(r#"{"alpha":"#), "got {json}");
    assert!(!json.contains("skipped"));
    // And the streamed bytes still parse back to the same value.
    let back: Record = serde_json::from_str(&json).expect("roundtrips");
    assert_eq!(back.alpha, record.alpha);

    for shape in [
        Shape::Unit,
        Shape::Tuple(7),
        Shape::Wide(1, "w\"ide".into()),
        Shape::Named { y: 1.0, x: f64::INFINITY },
    ] {
        assert_stream_matches_tree(&shape);
    }
}
