//! A minimal, self-contained stand-in for the `proptest` crate.
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case panics with its case number; the
//!   run is fully deterministic (seeded from the test's module path and
//!   name), so failures reproduce exactly.
//! - **Regex strategies** support the subset used in this workspace:
//!   concatenations of character classes / literal characters with
//!   `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.
//! - Strategies are sampled fresh per case; there is no size-driven
//!   growth. `prop_recursive` approximates depth with a weighted union.

use std::fmt;
use std::sync::Arc;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Deterministic per-test RNG (SplitMix64 over an FNV-1a seed of the
/// test path, mixed with the case index).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing one element of a fixed set.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use super::{Strategy, TestRng};

    /// A parse error for an unsupported regex.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// One regex atom: a set of char ranges with a repetition count.
    pub(crate) struct Atom {
        pub ranges: Vec<(char, char)>,
        pub min: usize,
        pub max: usize,
    }

    /// A compiled (sub-)regex strategy producing `String`s.
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let span = (atom.max - atom.min + 1) as u64;
                let count = atom.min + rng.below(span) as usize;
                for _ in 0..count {
                    let (lo, hi) = atom.ranges[rng.below(atom.ranges.len() as u64) as usize];
                    let width = (hi as u32 - lo as u32 + 1) as u64;
                    let c = char::from_u32(lo as u32 + rng.below(width) as u32)
                        .expect("range stays in valid chars");
                    out.push(c);
                }
            }
            out
        }
    }

    /// Compiles the supported regex subset: concatenated `[...]` classes
    /// or literal/escaped characters, each optionally quantified with
    /// `{n}`, `{m,n}`, `?`, `*`, or `+`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            escaped(
                                chars
                                    .get(i)
                                    .copied()
                                    .ok_or_else(|| Error("trailing backslash in class".into()))?,
                            )?
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi =
                                if chars[i] == '\\' {
                                    i += 1;
                                    escaped(chars.get(i).copied().ok_or_else(|| {
                                        Error("trailing backslash in class".into())
                                    })?)?
                                } else {
                                    chars[i]
                                };
                            i += 1;
                            if hi < lo {
                                return Err(Error(format!("bad range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if i >= chars.len() {
                        return Err(Error("unterminated character class".into()));
                    }
                    i += 1; // ']'
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    ranges
                }
                '\\' => {
                    i += 1;
                    let c = escaped(
                        chars.get(i).copied().ok_or_else(|| Error("trailing backslash".into()))?,
                    )?;
                    i += 1;
                    vec![(c, c)]
                }
                c if "(){}*+?|^$.".contains(c) => {
                    return Err(Error(format!("unsupported regex construct `{c}`")));
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let start = i;
                    while i < chars.len() && chars[i] != '}' {
                        i += 1;
                    }
                    if i >= chars.len() {
                        return Err(Error("unterminated quantifier".into()));
                    }
                    let body: String = chars[start..i].iter().collect();
                    i += 1; // '}'
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            let hi = hi.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            if max < min {
                return Err(Error("quantifier max < min".into()));
            }
            atoms.push(Atom { ranges, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn escaped(c: char) -> Result<char, Error> {
        Ok(match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '\\' => '\\',
            '"' => '"',
            '-' => '-',
            ']' => ']',
            '[' => '[',
            '.' => '.',
            other => return Err(Error(format!("unsupported escape `\\{other}`"))),
        })
    }
}

/// The glob import test files use.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// The `prop` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Boxes a strategy behind an `Arc` for use in [`Union`] arms.
#[doc(hidden)]
pub fn arc_strategy<S>(strategy: S) -> Arc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Arc::new(strategy)
}

/// The `proptest! { ... }` block: expands each contained property into a
/// deterministic `#[test]` loop over `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case_index in 0..config.cases {
                let mut test_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case_index,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut test_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "property {} failed at case #{}: {}",
                        stringify!($name),
                        case_index,
                        err
                    );
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strat`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::arc_strategy($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::arc_strategy($strat))),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}
