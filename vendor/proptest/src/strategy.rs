//! The [`Strategy`] trait and core combinators.

use crate::string::string_regex;
use crate::TestRng;
use std::sync::Arc;

/// A recipe for producing values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `depth` rounds of wrapping `self`
    /// with `expand`, where each round prefers the simpler inner
    /// strategy 3:1. The `_desired_size` / `_expected_branch_size`
    /// parameters are accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let expanded = expand(current.clone());
            current = Union::new(vec![
                (3, Arc::new(base.clone()) as Arc<dyn Strategy<Value = Self::Value>>),
                (1, Arc::new(expanded) as Arc<dyn Strategy<Value = Self::Value>>),
            ])
            .boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(pub Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Arc<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A weighted choice between strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Arc<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Arc<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "union of zero strategies");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "union weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted without a pick");
    }
}

/// A `&'static str` is itself a strategy: a regex for strings.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $ty
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `bool`: fair coin.
#[derive(Clone, Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! arbitrary_full_range_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = FullRange<$ty>;

            fn arbitrary() -> FullRange<$ty> {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

/// Strategy over an integer type's full value range.
#[derive(Clone, Debug)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! full_range_impls {
    ($($ty:ty),*) => {$(
        impl Strategy for FullRange<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

full_range_impls!(u8, u16, u32, u64, usize, i32, i64);
arbitrary_full_range_ints!(u8, u16, u32, u64, usize, i32, i64);

/// The canonical strategy for `T` ([`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
