//! A minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment of this repository has no network access to a
//! crates registry, so the workspace vendors the small slice of serde it
//! actually uses. Instead of serde's visitor-based zero-copy data model,
//! everything funnels through an owned [`Value`] tree: `Serialize` types
//! render themselves *to* a `Value`, `Deserialize` types rebuild
//! themselves *from* one. The public trait signatures
//! (`fn serialize<S: Serializer>(…)`, `fn deserialize<'de, D:
//! Deserializer<'de>>(…)`, `#[serde(with = "module")]` helper modules)
//! stay source-compatible with the real crate for the patterns used in
//! this workspace.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};
