//! Deserialization: types rebuild themselves from a [`Value`], or —
//! on the hot path — stream themselves straight out of JSON text via
//! [`Deserialize::from_json`] without materializing the tree.

use crate::value::{JsonParser, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The error trait deserializer errors implement (mirrors
/// `serde::de::Error` far enough for `Error::custom`).
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete error produced by [`Deserialize::from_value`].
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from a message (inherent mirror of
    /// [`Error::custom`], so derive-generated code needs no trait
    /// import at the call site).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can rebuild itself from a [`Value`].
///
/// `from_value` is the working method; `deserialize` keeps real-serde
/// call sites (`serde::Deserialize::deserialize(de)`) compiling.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Streams `Self` straight out of JSON text, without building the
    /// intermediate [`Value`] tree. The default implementation falls
    /// back to tree parsing, so hand-written impls stay correct; the
    /// derive macro and the impls below override it with direct decoding
    /// (this is what makes `serde_json::from_str` allocation-lean).
    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        let value = parser.parse_value().map_err(DeError)?;
        Self::from_value(&value)
    }

    /// Pulls a value out of `deserializer` and rebuilds `Self` from it.
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(D::Error::custom)
    }
}

/// A source of one [`Value`]. The lifetime parameter exists only for
/// signature compatibility with real serde; nothing borrows from input.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: Error;

    /// Yields the input as a value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// The identity deserializer over an owned [`Value`]. Derive-generated
/// code uses it to drive `with = "module"` helpers.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, Self::Error> {
        Ok(self.0)
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        parser.parse_value().map_err(DeError)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        parser.parse_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.peek_byte() != Some(b'"') {
            return Err(DeError::custom("expected string"));
        }
        parser.parse_str().map(|s| s.into_owned()).map_err(DeError)
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(std::sync::Arc::from).ok_or_else(|| DeError::custom("expected string"))
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.peek_byte() != Some(b'"') {
            return Err(DeError::custom("expected string"));
        }
        // Borrowed literals go straight into the `Arc` — one allocation.
        parser.parse_str().map(|s| std::sync::Arc::from(&*s)).map_err(DeError)
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

macro_rules! deserialize_uint {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            DeError::custom(concat!("integer out of range for ", stringify!($ty)))
                        }),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($ty)))),
                }
            }

            fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
                match parser.parse_number() {
                    Ok(n) => n.as_u64().and_then(|v| <$ty>::try_from(v).ok()).ok_or_else(|| {
                        DeError::custom(concat!("integer out of range for ", stringify!($ty)))
                    }),
                    Err(_) => Err(DeError::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            DeError::custom(concat!("integer out of range for ", stringify!($ty)))
                        }),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($ty)))),
                }
            }

            fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
                match parser.parse_number() {
                    Ok(n) => n.as_i64().and_then(|v| <$ty>::try_from(v).ok()).ok_or_else(|| {
                        DeError::custom(concat!("integer out of range for ", stringify!($ty)))
                    }),
                    Err(_) => Err(DeError::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize, u128);
deserialize_int!(i8, i16, i32, i64, isize, i128);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected number")),
        }
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.parse_null() {
            return Ok(f64::NAN);
        }
        match parser.parse_number() {
            Ok(n) => Ok(n.as_f64()),
            Err(_) => Err(DeError::custom("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        T::from_json(parser).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.parse_null() {
            Ok(None)
        } else {
            T::from_json(parser).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.peek_byte() != Some(b'[') {
            return Err(DeError::custom("expected array"));
        }
        parser.begin_array().map_err(DeError)?;
        let mut out = Vec::new();
        let mut first = true;
        while parser.array_next(first).map_err(DeError)? {
            out.push(T::from_json(parser)?);
            first = false;
        }
        Ok(out)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        Vec::<T>::from_json(parser).map(|v| v.into_iter().collect())
    }
}

/// Reverses `ser::map_key_to_string`: a key that does not deserialize
/// directly from its string form is re-parsed as JSON first (this is how
/// tuple- or integer-keyed maps survive the object round-trip).
fn map_key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    match K::from_value(&Value::String(key.to_string())) {
        Ok(k) => Ok(k),
        Err(first) => match Value::parse_json(key) {
            Ok(reparsed) => K::from_value(&reparsed),
            Err(_) => Err(first),
        },
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((map_key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.peek_byte() != Some(b'{') {
            return Err(DeError::custom("expected object"));
        }
        parser.begin_object().map_err(DeError)?;
        let mut out = BTreeMap::new();
        let mut first = true;
        while let Some(key) = parser.object_key(first).map_err(DeError)? {
            out.insert(map_key_from_string(&key)?, V::from_json(parser)?);
            first = false;
        }
        Ok(out)
    }
}

/// The unit type rebuilds from `null`, as in real serde.
impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            _ => Err(DeError::custom("expected null")),
        }
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.parse_null() {
            Ok(())
        } else {
            Err(DeError::custom("expected null"))
        }
    }
}

/// Reverses the externally-tagged `Result` form: `{"Ok": …}` or
/// `{"Err": …}`.
impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.as_object().ok_or_else(|| DeError::custom("expected Result object"))?;
        match (obj.get("Ok"), obj.get("Err")) {
            (Some(v), None) => T::from_value(v).map(Ok),
            (None, Some(e)) => E::from_value(e).map(Err),
            _ => Err(DeError::custom("expected exactly one of \"Ok\" or \"Err\"")),
        }
    }

    fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
        if parser.peek_byte() != Some(b'{') {
            return Err(DeError::custom("expected Result object"));
        }
        parser.begin_object().map_err(DeError)?;
        let Some(key) = parser.object_key(true).map_err(DeError)? else {
            return Err(DeError::custom("expected exactly one of \"Ok\" or \"Err\""));
        };
        let out = match &*key {
            "Ok" => Ok(T::from_json(parser)?),
            "Err" => Err(E::from_json(parser)?),
            _ => return Err(DeError::custom("expected exactly one of \"Ok\" or \"Err\"")),
        };
        if parser.object_key(false).map_err(DeError)?.is_some() {
            return Err(DeError::custom("expected exactly one of \"Ok\" or \"Err\""));
        }
        Ok(out)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::custom(concat!("expected ", $len, "-element array")));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }

            fn from_json(parser: &mut JsonParser<'_>) -> Result<Self, DeError> {
                if parser.peek_byte() != Some(b'[') {
                    return Err(DeError::custom("expected tuple array"));
                }
                parser.begin_array().map_err(DeError)?;
                let mut first = true;
                let out = ($(
                    {
                        if !parser.array_next(first).map_err(DeError)? {
                            return Err(DeError::custom(concat!(
                                "expected ", $len, "-element array"
                            )));
                        }
                        first = false;
                        $name::from_json(parser)?
                    },
                )+);
                let _ = first;
                if parser.array_next(false).map_err(DeError)? {
                    return Err(DeError::custom(concat!("expected ", $len, "-element array")));
                }
                Ok(out)
            }
        }
    )*};
}

deserialize_tuple! {
    (1; A.0)
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
}
