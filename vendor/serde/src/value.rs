//! The owned data model everything serializes through, plus the JSON
//! text form (`vendor/serde_json` is a thin wrapper over the functions
//! here, so there is exactly one JSON reader/writer in the tree).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// JSON objects; `BTreeMap` keeps key order deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON number, split like serde_json's internal representation.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => b >= 0 && a == b as u64,
            (Float(a), Float(b)) => a == b,
            (Float(f), PosInt(i)) | (PosInt(i), Float(f)) => f == i as f64,
            (Float(f), NegInt(i)) | (NegInt(i), Float(f)) => f == i as f64,
        }
    }
}

impl Number {
    /// The value as an `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) if v >= 0 => Some(v as u64),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

impl Value {
    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as JSON text; `pretty` uses two-space indent.
    pub fn render_json(&self, pretty: bool) -> String {
        let mut out = String::new();
        render(self, pretty, 0, &mut out);
        out
    }

    /// Parses JSON text into a value.
    pub fn parse_json(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render(value: &Value, pretty: bool, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                render(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(pretty: bool, depth: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn render_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if !v.is_finite() {
                // serde_json rejects these; emitting null keeps us total.
                out.push_str("null");
            } else if v.fract() == 0.0 {
                // `{}` drops the ".0" on integral floats; keep it so the
                // text round-trips as a float-shaped token.
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Parsing recurses per
/// `[`/`{`, so unbounded nesting would overflow the stack — an abort that
/// `catch_unwind` cannot contain. 128 levels is far beyond any document
/// this workspace produces.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err("lone leading surrogate".into());
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(s).map_err(|_| "bad \\u escape".to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        let n = if is_float {
            Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Parse the magnitude, negate; fall back to float on overflow.
            match stripped.parse::<i64>() {
                Ok(v) => Number::NegInt(-v),
                Err(_) => Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?),
            }
        };
        Ok(Value::Number(n))
    }
}
