//! The owned data model everything serializes through, plus the JSON
//! text form (`vendor/serde_json` is a thin wrapper over the functions
//! here, so there is exactly one JSON reader/writer in the tree).

use std::fmt::Write as _;

/// JSON objects. Entries are kept sorted by key, so iteration and
/// rendering are deterministic and byte-identical to the `BTreeMap` this
/// replaces, while the flat `Vec` backing keeps building and walking a
/// tree cheap (one allocation per object instead of one per entry).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of `key`, or where it would be inserted. The common caller
    /// appends keys in ascending order (our own serializer emits struct
    /// fields that way more often than not), so probe the tail first.
    fn search(&self, key: &str) -> Result<usize, usize> {
        if let Some((last, _)) = self.entries.last() {
            match key.cmp(last.as_str()) {
                std::cmp::Ordering::Greater => return Err(self.entries.len()),
                std::cmp::Ordering::Equal => return Ok(self.entries.len() - 1),
                std::cmp::Ordering::Less => {}
            }
        }
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key))
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.search(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.search(key).ok().map(|i| &mut self.entries[i].1)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.search(key).is_ok()
    }

    /// Inserts `key`, returning the previous value if it was present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self.search(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates with mutable values, in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates over keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&(String, Value)) -> (&String, &Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn pair(entry: &(String, Value)) -> (&String, &Value) {
            (&entry.0, &entry.1)
        }
        self.entries.iter().map(pair)
    }
}

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON number, split like serde_json's internal representation.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => b >= 0 && a == b as u64,
            (Float(a), Float(b)) => a == b,
            (Float(f), PosInt(i)) | (PosInt(i), Float(f)) => f == i as f64,
            (Float(f), NegInt(i)) | (NegInt(i), Float(f)) => f == i as f64,
        }
    }
}

impl Number {
    /// The value as an `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) if v >= 0 => Some(v as u64),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

impl Value {
    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as JSON text; `pretty` uses two-space indent.
    pub fn render_json(&self, pretty: bool) -> String {
        let mut out = String::new();
        render(self, pretty, 0, &mut out);
        out
    }

    /// Renders compact JSON into an existing buffer — the allocation-free
    /// form of `render_json(false)` for callers that reuse a write buffer
    /// across many values.
    pub fn render_json_into(&self, out: &mut String) {
        render(self, false, 0, out);
    }

    /// Parses JSON text into a value.
    pub fn parse_json(text: &str) -> Result<Value, String> {
        let mut p = JsonParser::new(text);
        let v = p.parse_value()?;
        p.finish()?;
        Ok(v)
    }
}

fn render(value: &Value, pretty: bool, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                render(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, pretty, depth + 1, out);
            }
            newline_indent(pretty, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(pretty: bool, depth: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

pub(crate) fn render_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if !v.is_finite() {
                // serde_json rejects these; emitting null keeps us total.
                out.push_str("null");
            } else if v.fract() == 0.0 {
                // `{}` drops the ".0" on integral floats; keep it so the
                // text round-trips as a float-shaped token.
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

pub(crate) fn render_string(s: &str, out: &mut String) {
    // Every byte that needs escaping is ASCII, so scan bytes and copy the
    // clean spans between escapes in bulk instead of pushing char-by-char
    // (multi-byte UTF-8 never matches: its bytes are all >= 0x80).
    out.reserve(s.len() + 2);
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\t' => "\\t",
            b'\r' => "\\r",
            0x08 => "\\b",
            0x0c => "\\f",
            b if b < 0x20 => "",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        if escape.is_empty() {
            let _ = write!(out, "\\u{:04x}", b);
        } else {
            out.push_str(escape);
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Maximum container nesting the parser accepts. Parsing recurses per
/// `[`/`{`, so unbounded nesting would overflow the stack — an abort that
/// `catch_unwind` cannot contain. 128 levels is far beyond any document
/// this workspace produces.
const MAX_DEPTH: usize = 128;

/// A cursor over JSON text that supports both tree parsing
/// ([`JsonParser::parse_value`]) and streaming typed decoding: the
/// derive-generated `Deserialize::from_json` drives the `begin_*` /
/// `*_next` primitives to build target types straight from the text,
/// skipping the intermediate [`Value`] tree (and its per-node
/// allocations) entirely. Keys and escape-free strings are handed out as
/// borrowed slices of the input.
///
/// Container nesting is depth-guarded exactly like the tree parser, so
/// adversarial input cannot overflow the stack through either path.
pub struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> JsonParser<'a> {
    /// Creates a parser over `text`.
    pub fn new(text: &'a str) -> Self {
        JsonParser { bytes: text.as_bytes(), pos: 0, depth: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The next non-whitespace byte, without consuming it. This is how
    /// typed decoders branch (`"` → string/variant, `{` → object, …).
    pub fn peek_byte(&mut self) -> Option<u8> {
        self.skip_ws();
        self.peek()
    }

    /// Parses one complete value as a tree from the current position.
    pub fn parse_value(&mut self) -> Result<Value, String> {
        self.value(self.depth)
    }

    /// Consumes trailing whitespace and demands end of input.
    pub fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing characters at byte {}", self.pos));
        }
        Ok(())
    }

    /// Consumes `null` if it is next; returns whether it did.
    pub fn parse_null(&mut self) -> bool {
        self.skip_ws();
        self.eat_literal("null")
    }

    /// Consumes `true`/`false` if one is next.
    pub fn parse_bool(&mut self) -> Option<bool> {
        self.skip_ws();
        if self.eat_literal("true") {
            Some(true)
        } else if self.eat_literal("false") {
            Some(false)
        } else {
            None
        }
    }

    /// Parses a number token.
    pub fn parse_number(&mut self) -> Result<Number, String> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("expected number at byte {}", self.pos)),
        }
    }

    /// Parses a string literal. Escape-free strings (the common case)
    /// borrow from the input.
    pub fn parse_str(&mut self) -> Result<std::borrow::Cow<'a, str>, String> {
        self.skip_ws();
        self.string_cow()
    }

    /// Consumes `[`, entering an array.
    pub fn begin_array(&mut self) -> Result<(), String> {
        self.skip_ws();
        self.expect(b'[')?;
        self.enter()
    }

    /// After `begin_array`: whether another element follows. Consumes the
    /// separating `,` (or the closing `]`).
    pub fn array_next(&mut self, first: bool) -> Result<bool, String> {
        self.skip_ws();
        match self.peek() {
            Some(b']') => {
                self.pos += 1;
                self.depth -= 1;
                Ok(false)
            }
            _ if first => Ok(true),
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            _ => Err(format!("expected `,` or `]` at byte {}", self.pos)),
        }
    }

    /// Consumes `{`, entering an object.
    pub fn begin_object(&mut self) -> Result<(), String> {
        self.skip_ws();
        self.expect(b'{')?;
        self.enter()
    }

    /// After `begin_object`: the next entry's key (with its `:`
    /// consumed), or `None` at the closing `}`. Escape-free keys borrow
    /// from the input.
    pub fn object_key(&mut self, first: bool) -> Result<Option<std::borrow::Cow<'a, str>>, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'}') => {
                self.pos += 1;
                self.depth -= 1;
                return Ok(None);
            }
            _ if first => {}
            Some(b',') => self.pos += 1,
            _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
        }
        self.skip_ws();
        let key = self.string_cow()?;
        self.skip_ws();
        self.expect(b':')?;
        Ok(Some(key))
    }

    /// Parses and discards one complete value (unknown object keys).
    /// The skipped value is still fully validated, and the depth guard
    /// still applies.
    pub fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(()),
            Some(b't') if self.eat_literal("true") => Ok(()),
            Some(b'f') if self.eat_literal("false") => Ok(()),
            Some(b'"') => self.string_cow().map(drop),
            Some(b'[') => {
                self.begin_array()?;
                let mut first = true;
                while self.array_next(first)? {
                    self.skip_value()?;
                    first = false;
                }
                Ok(())
            }
            Some(b'{') => {
                self.begin_object()?;
                let mut first = true;
                while self.object_key(first)?.is_some() {
                    self.skip_value()?;
                    first = false;
                }
                Ok(())
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number().map(drop),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number().map(Value::Number),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.string_cow().map(std::borrow::Cow::into_owned)
    }

    fn string_cow(&mut self) -> Result<std::borrow::Cow<'a, str>, String> {
        self.expect(b'"')?;
        // Fast path: most strings contain no escapes, so the first scan
        // finds the closing quote and the contents borrow straight from
        // the input.
        let first = self.pos;
        self.pos = seek_quote_or_escape(self.bytes, first);
        if self.peek() == Some(b'"') {
            let s = std::str::from_utf8(&self.bytes[first..self.pos])
                .map_err(|_| "invalid utf-8 in string".to_string())?;
            self.pos += 1;
            return Ok(std::borrow::Cow::Borrowed(s));
        }
        self.pos = first;
        let mut out = String::new();
        loop {
            let start = self.pos;
            self.pos = seek_quote_or_escape(self.bytes, self.pos);
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(std::borrow::Cow::Owned(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err("lone leading surrogate".into());
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(s).map_err(|_| "bad \\u escape".to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Number, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        let n = if is_float {
            Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Parse the magnitude, negate; fall back to float on overflow.
            match stripped.parse::<i64>() {
                Ok(v) => Number::NegInt(-v),
                Err(_) => Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(text.parse::<f64>().map_err(|e| e.to_string())?),
            }
        };
        Ok(n)
    }
}

/// Index of the first `"` or `\` at or after `i`, or `bytes.len()` if
/// neither occurs. Scans eight bytes per step (SWAR zero-byte trick) —
/// string contents dominate the JSON the decode path reads, so this is
/// the parser's hottest loop. Borrow propagation in the zero-detect can
/// only raise false flags *above* a true match, and the caller takes the
/// lowest flag, so first-match semantics are exact.
fn seek_quote_or_escape(bytes: &[u8], mut i: usize) -> usize {
    const ONES: u64 = 0x0101_0101_0101_0101;
    const HIGH: u64 = 0x8080_8080_8080_8080;
    while let Some(chunk) = bytes.get(i..i + 8) {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        let q = w ^ (ONES * u64::from(b'"'));
        let e = w ^ (ONES * u64::from(b'\\'));
        let hit = (q.wrapping_sub(ONES) & !q | e.wrapping_sub(ONES) & !e) & HIGH;
        if hit != 0 {
            return i + (hit.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'\\' {
        i += 1;
    }
    i
}
