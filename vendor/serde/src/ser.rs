//! Serialization: types render themselves to a [`Value`].

use crate::value::{render_number, render_string, Map, Number, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Streams an iterator of serializable items as a JSON array. Compact
/// rendering of an empty array is `[]` either way, so no special case.
fn write_json_seq<'a, T, I>(items: I, out: &mut String)
where
    T: Serialize + ?Sized + 'a,
    I: IntoIterator<Item = &'a T>,
{
    out.push('[');
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

/// A type that can render itself as a [`Value`].
///
/// `to_value` is the working method; `serialize` exists so call sites
/// written against real serde (`serde::Serialize::serialize(&x, ser)`,
/// `#[serde(with = "…")]` helper modules) compile unchanged.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;

    /// Appends `self` as compact JSON text to `out`, streaming — no
    /// intermediate [`Value`] tree. Byte-identical to
    /// `self.to_value().render_json(false)` (object keys sorted, same
    /// number/string formatting); the default falls back to exactly
    /// that, so hand-written impls stay correct without opting in.
    fn write_json(&self, out: &mut String) {
        self.to_value().render_json_into(out);
    }

    /// Feeds the rendered value to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for one rendered [`Value`].
pub trait Serializer: Sized {
    /// What a successful serialization produces.
    type Ok;
    /// The error type.
    type Error;

    /// Consumes one rendered value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// The identity serializer: hands the rendered [`Value`] straight back.
/// Derive-generated code uses it to drive `with = "module"` helpers.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn write_json(&self, out: &mut String) {
        self.render_json_into(out);
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }

    fn write_json(&self, out: &mut String) {
        render_string(self, out);
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }

    fn write_json(&self, out: &mut String) {
        render_string(self, out);
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }

    fn write_json(&self, out: &mut String) {
        let mut utf8 = [0u8; 4];
        render_string(self.encode_utf8(&mut utf8), out);
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.as_ref().to_string())
    }

    fn write_json(&self, out: &mut String) {
        render_string(self.as_ref(), out);
    }
}

macro_rules! serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }

            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{}", *self as u64);
            }
        }
    )*};
}

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }

            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{}", *self as i64);
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Values beyond u64 lose precision through the float fallback;
        // the workspace only serializes millisecond counts here.
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::PosInt(v)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }

    fn write_json(&self, out: &mut String) {
        match u64::try_from(*self) {
            Ok(v) => render_number(Number::PosInt(v), out),
            Err(_) => render_number(Number::Float(*self as f64), out),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) if v >= 0 => Value::Number(Number::PosInt(v as u64)),
            Ok(v) => Value::Number(Number::NegInt(v)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }

    fn write_json(&self, out: &mut String) {
        match i64::try_from(*self) {
            Ok(v) => {
                let _ = write!(out, "{v}");
            }
            Err(_) => render_number(Number::Float(*self as f64), out),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }

    fn write_json(&self, out: &mut String) {
        render_number(Number::Float(*self), out);
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }

    fn write_json(&self, out: &mut String) {
        render_number(Number::Float(*self as f64), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

/// Maps become JSON objects. Non-string keys are rendered to their
/// compact JSON text, since JSON object keys must be strings (the
/// deserializer reverses this; see `de`).
pub fn map_key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => other.render_json(false),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(map_key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }

    fn write_json(&self, out: &mut String) {
        // The tree path sorts by the *rendered* key string (which can
        // disagree with `K` order — integer keys render "10" < "2") and
        // last-insert-wins on renders that collide; mirror both so the
        // stream is byte-identical.
        let mut entries: Vec<(String, &V)> =
            self.iter().map(|(k, v)| (map_key_to_string(k), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        let mut first = true;
        for (i, (key, value)) in entries.iter().enumerate() {
            if entries.get(i + 1).is_some_and(|next| next.0 == *key) {
                continue; // shadowed by a later insert of the same key
            }
            if !first {
                out.push(',');
            }
            first = false;
            render_string(key, out);
            out.push(':');
            value.write_json(out);
        }
        out.push('}');
    }
}

/// The unit type renders as `null`, as in real serde.
impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

/// `Result` uses real serde's externally-tagged form: `{"Ok": …}` or
/// `{"Err": …}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        match self {
            Ok(v) => map.insert("Ok".to_string(), v.to_value()),
            Err(e) => map.insert("Err".to_string(), e.to_value()),
        };
        Value::Object(map)
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Ok(v) => {
                out.push_str("{\"Ok\":");
                v.write_json(out);
                out.push('}');
            }
            Err(e) => {
                out.push_str("{\"Err\":");
                e.write_json(out);
                out.push('}');
            }
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }

            fn write_json(&self, out: &mut String) {
                out.push('[');
                $(
                    if $idx > 0 {
                        out.push(',');
                    }
                    self.$idx.write_json(out);
                )+
                out.push(']');
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
