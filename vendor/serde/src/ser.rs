//! Serialization: types render themselves to a [`Value`].

use crate::value::{Map, Number, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A type that can render itself as a [`Value`].
///
/// `to_value` is the working method; `serialize` exists so call sites
/// written against real serde (`serde::Serialize::serialize(&x, ser)`,
/// `#[serde(with = "…")]` helper modules) compile unchanged.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;

    /// Feeds the rendered value to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for one rendered [`Value`].
pub trait Serializer: Sized {
    /// What a successful serialization produces.
    type Ok;
    /// The error type.
    type Error;

    /// Consumes one rendered value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// The identity serializer: hands the rendered [`Value`] straight back.
/// Derive-generated code uses it to drive `with = "module"` helpers.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Values beyond u64 lose precision through the float fallback;
        // the workspace only serializes millisecond counts here.
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::PosInt(v)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) if v >= 0 => Value::Number(Number::PosInt(v as u64)),
            Ok(v) => Value::Number(Number::NegInt(v)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Maps become JSON objects. Non-string keys are rendered to their
/// compact JSON text, since JSON object keys must be strings (the
/// deserializer reverses this; see `de`).
pub fn map_key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => other.render_json(false),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(map_key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
