//! A minimal, self-contained stand-in for `serde_json`.
//!
//! The JSON reader/writer itself lives in the vendored `serde` crate
//! (on [`Value`]); this crate provides the familiar entry points and the
//! `json!` macro on top of it.

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// A JSON (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value as compact JSON. Streams through
/// [`serde::Serialize::write_json`] — no intermediate `Value` tree.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Renders a value as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_json(true))
}

/// Renders a value as compact JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses a value from JSON text. Decoding streams straight from the
/// text (`Deserialize::from_json`); no intermediate [`Value`] tree is
/// built for types whose impls support it.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = serde::value::JsonParser::new(text);
    let out = T::from_json(&mut parser).map_err(|e| Error(e.to_string()))?;
    parser.finish().map_err(Error)?;
    Ok(out)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Builds a [`Value`] from JSON-looking syntax. Object keys must be
/// string literals; values may be nested `json!` syntax or any
/// expression whose type implements the vendored `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_object_internal!(object $($body)*);
        $crate::Value::Object(object)
    }};
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$element)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// `json!` helper: munches `"key": value,` entries of an object body.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($object:ident) => {};
    ($object:ident $key:literal : $($rest:tt)*) => {
        $crate::json_value_internal!($object $key [] $($rest)*);
    };
}

/// `json!` helper: accumulates one value's tokens up to a top-level `,`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_value_internal {
    ($object:ident $key:literal [$($value:tt)*] , $($rest:tt)*) => {
        $object.insert(::std::string::String::from($key), $crate::json!($($value)*));
        $crate::json_object_internal!($object $($rest)*);
    };
    ($object:ident $key:literal [$($value:tt)*]) => {
        $object.insert(::std::string::String::from($key), $crate::json!($($value)*));
    };
    ($object:ident $key:literal [$($value:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_value_internal!($object $key [$($value)* $next] $($rest)*);
    };
}
