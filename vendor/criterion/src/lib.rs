//! A minimal, self-contained stand-in for the `criterion` crate.
//!
//! Each benchmark closure is timed over a small fixed number of
//! iterations and the mean wall time is printed. There is no warm-up,
//! statistical analysis, or HTML report — just enough to keep `cargo
//! bench` binaries (with `harness = false`) compiling and producing
//! readable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs.
const DEFAULT_ITERATIONS: u64 = 10;

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation for a benchmark group (recorded, printed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { text: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// The top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_ITERATIONS, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_ITERATIONS,
        }
    }

    /// No-op finalizer (the real crate prints a summary here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    iterations: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / iterations.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {id:<50} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
