//! A minimal, self-contained stand-in for the `rand` crate.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator — *not* stream-compatible
//! with real rand's ChaCha-based `StdRng`, but deterministic for a given
//! seed, which is all the workspace relies on (seeded app generation and
//! the monkey baseline).

/// Raw 64-bit generation.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution of real rand, reduced to what is used here).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by `Rng::gen_range`. The type parameter (rather
/// than an associated type) lets the expected output type drive the
/// integer-literal inference of the range bounds, as in real rand.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

sample_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a range. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so small consecutive seeds diverge immediately.
            StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(b'a'..=b'z');
            assert!((b'a'..=b'z').contains(&w));
            let f = rng.gen_range(0.0f64..2.0);
            assert!((0.0..2.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
