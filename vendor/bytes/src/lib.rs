//! A minimal, self-contained stand-in for the `bytes` crate: an
//! `Arc`-backed immutable byte buffer with O(1) clone/slice ([`Bytes`]),
//! a growable builder ([`BytesMut`]), and the big-endian [`Buf`] /
//! [`BufMut`] cursor traits — just the surface the FAPK container uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer (a view into shared
/// storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: Arc::from(src), start: 0, end: src.len() }
    }

    /// A buffer over a static slice (copied here; the real crate
    /// borrows, but the API shape is what call sites rely on).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// An owned view of the subrange `[start, end)`. Panics if the range
    /// is out of bounds (matching the real crate).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Panics if `at > len` (matching the real crate).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::from(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// The current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Empties the buffer, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

/// Read-cursor operations (big-endian), advancing past consumed bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes `dst.len()` bytes into `dst`. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes a big-endian `u16`. Panics if short.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Consumes a big-endian `u32`. Panics if short.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write-cursor operations (big-endian).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}
