//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the vendored value-based serde (no `syn`/`quote`; the input item
//! is parsed directly from the `proc_macro` token stream).
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields, newtype/tuple structs, unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   like serde_json: `"Variant"`, `{"Variant": v}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`);
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(with = "module")]` and the container attribute
//!   `#[serde(transparent)]`.
//!
//! Generics are rejected with a `compile_error!` — nothing in the
//! workspace derives on generic types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive output parses")
}

// ---------------------------------------------------------------------------
// Input model

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Unit,
    /// Tuple struct with this arity.
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    attrs: Attrs,
}

#[derive(Default)]
struct Attrs {
    skip: bool,
    default: bool,
    with: Option<String>,
    #[allow(dead_code)] // accepted, but 1-tuples are always transparent
    transparent: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { toks: stream.into_iter().collect(), i: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.peek_punct(ch) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Consumes any leading `#[...]` attributes, folding `serde` ones into
/// the returned [`Attrs`] and ignoring the rest (doc comments, etc.).
fn parse_attrs(cur: &mut Cursor) -> Result<Attrs, String> {
    let mut attrs = Attrs::default();
    while cur.peek_punct('#') {
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("expected attribute brackets, found {other:?}")),
        };
        let mut inner = Cursor::new(group.stream());
        let head = match inner.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue, // e.g. `#![...]` or exotic paths — not ours
        };
        if head != "serde" {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => return Err(format!("expected serde(...), found {other:?}")),
        };
        let mut args = Cursor::new(args.stream());
        while args.peek().is_some() {
            let flag = args.expect_ident()?;
            match flag.as_str() {
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                "transparent" => attrs.transparent = true,
                "with" => {
                    if !args.eat_punct('=') {
                        return Err("serde(with) expects `= \"module\"`".into());
                    }
                    match args.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let text = lit.to_string();
                            let path = text.trim_matches('"').to_string();
                            attrs.with = Some(path);
                        }
                        other => {
                            return Err(format!("serde(with) expects a string, found {other:?}"))
                        }
                    }
                }
                other => return Err(format!("unsupported serde attribute `{other}`")),
            }
            args.eat_punct(',');
        }
    }
    Ok(attrs)
}

/// Skips `pub`, `pub(crate)`, …
fn skip_visibility(cur: &mut Cursor) {
    if matches!(cur.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        cur.next();
        if matches!(cur.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            cur.next();
        }
    }
}

/// Skips one type (and its trailing comma, if any), tracking `<`/`>`
/// depth so generic arguments' commas don't end the field early.
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                cur.next();
                return;
            }
            _ => {}
        }
        cur.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur)?;
        skip_visibility(&mut cur);
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_type(&mut cur);
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant from its paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut arity = 0;
    let mut seen = false;
    let mut depth = 0i32;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if seen {
                    arity += 1;
                }
                seen = false;
            }
            _ => seen = true,
        }
    }
    if seen {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        parse_attrs(&mut cur)?; // doc comments on variants
        let name = cur.expect_ident()?;
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                VariantKind::Named(fields.into_iter().map(|f| f.name).collect())
            }
            _ => VariantKind::Unit,
        };
        if cur.peek_punct('=') {
            return Err("explicit enum discriminants are not supported".into());
        }
        if !cur.eat_punct(',') && cur.peek().is_some() {
            return Err(format!("expected `,` after variant `{name}`"));
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    parse_attrs(&mut cur)?; // container attrs; transparent is implied for 1-tuples
    skip_visibility(&mut cur);
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if cur.peek_punct('<') {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            None => Kind::Unit,
            other => return Err(format!("unexpected token after struct name: {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive on `{other}` items")),
    };
    Ok(Item { name, kind })
}

// ---------------------------------------------------------------------------
// Code generation

/// The expression serializing `place` (an expression of the field's
/// type, already behind a reference) under the field's attributes.
fn ser_field_expr(place: &str, attrs: &Attrs) -> String {
    match &attrs.with {
        Some(path) => format!(
            "match {path}::serialize({place}, serde::ser::ValueSerializer) {{ \
             Ok(v) => v, Err(never) => match never {{}} }}"
        ),
        None => format!("serde::Serialize::to_value({place})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "serde::Value::Null".to_string(),
        Kind::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Named(fields) => {
            let mut out = String::from("let mut object = serde::value::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let expr = ser_field_expr(&format!("&self.{}", f.name), &f.attrs);
                out.push_str(&format!("object.insert(String::from({:?}), {expr});\n", f.name));
            }
            out.push_str("serde::Value::Object(object)");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ \
                             let mut object = serde::value::Map::new(); \
                             object.insert(String::from({vn:?}), {inner}); \
                             serde::Value::Object(object) }}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("let mut inner = serde::value::Map::new(); ");
                        for fname in fields {
                            inner.push_str(&format!(
                                "inner.insert(String::from({fname:?}), \
                                 serde::Serialize::to_value({fname})); "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} \
                             let mut object = serde::value::Map::new(); \
                             object.insert(String::from({vn:?}), serde::Value::Object(inner)); \
                             serde::Value::Object(object) }}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let stream = gen_write_json_method(item);
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         {stream}\n\
         }}"
    )
}

/// The expression streaming `place` (an expression of the field's type,
/// already behind a reference) into `out` under the field's attributes.
/// `with` modules produce a tree; everything else streams directly.
fn write_field_expr(place: &str, attrs: &Attrs) -> String {
    match &attrs.with {
        Some(path) => format!(
            "match {path}::serialize({place}, serde::ser::ValueSerializer) {{ \
             Ok(v) => v.render_json_into(out), Err(never) => match never {{}} }};"
        ),
        None => format!("serde::Serialize::write_json({place}, out);"),
    }
}

/// Statements streaming a JSON object with the given `(key, value-stmt)`
/// entries, emitted in sorted key order — `Map` keeps entries sorted, so
/// this is what the tree path renders.
fn write_sorted_object(entries: &mut Vec<(String, String)>) -> String {
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("out.push('{');\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str("out.push(',');\n");
        }
        out.push_str(&format!("out.push_str({:?});\n", format!("\"{key}\":")));
        out.push_str(value);
        out.push('\n');
    }
    out.push_str("out.push('}');");
    out
}

/// The `write_json` method body: compact JSON streamed straight into the
/// caller's buffer, byte-identical to rendering `to_value()` (object
/// keys sorted, same number/string formatting) but with no `Value` tree
/// and no per-node allocation.
fn gen_write_json_method(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "out.push_str(\"null\");".to_string(),
        Kind::Tuple(1) => "serde::Serialize::write_json(&self.0, out);".to_string(),
        Kind::Tuple(n) => {
            let mut out = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    out.push_str("out.push(',');\n");
                }
                out.push_str(&format!("serde::Serialize::write_json(&self.{i}, out);\n"));
            }
            out.push_str("out.push(']');");
            out
        }
        Kind::Named(fields) => {
            let mut entries: Vec<(String, String)> = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| (f.name.clone(), write_field_expr(&format!("&self.{}", f.name), &f.attrs)))
                .collect();
            write_sorted_object(&mut entries)
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let tag = format!("out.push_str({:?});", format!("{{\"{vn}\":"));
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => out.push_str({:?}),\n",
                        format!("\"{vn}\"")
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::write_json(f0, out);".to_string()
                        } else {
                            let mut s = String::from("out.push('[');\n");
                            for (i, b) in binders.iter().enumerate() {
                                if i > 0 {
                                    s.push_str("out.push(',');\n");
                                }
                                s.push_str(&format!("serde::Serialize::write_json({b}, out);\n"));
                            }
                            s.push_str("out.push(']');");
                            s
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ {tag}\n{inner}\nout.push('}}'); }}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut entries: Vec<(String, String)> = fields
                            .iter()
                            .map(|fname| {
                                (
                                    fname.clone(),
                                    format!("serde::Serialize::write_json({fname}, out);"),
                                )
                            })
                            .collect();
                        let inner = write_sorted_object(&mut entries);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {tag}\n{inner}\nout.push('}}'); }}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!("fn write_json(&self, out: &mut String) {{\n{body}\n}}")
}

/// The expression rebuilding one named field from map variable `map`.
fn de_field_expr(type_name: &str, map: &str, fname: &str, attrs: &Attrs) -> String {
    if attrs.skip {
        return "Default::default()".to_string();
    }
    let some_arm = match &attrs.with {
        Some(path) => format!("{path}::deserialize(serde::de::ValueDeserializer(v.clone()))?"),
        None => "serde::Deserialize::from_value(v)?".to_string(),
    };
    let none_arm = if attrs.default {
        "Default::default()".to_string()
    } else {
        format!(
            "return Err(serde::de::DeError::custom({:?}))",
            format!("{type_name}: missing field `{fname}`")
        )
    };
    format!("match {map}.get({fname:?}) {{ Some(v) => {some_arm}, None => {none_arm} }}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("let _ = value; Ok({name})"),
        Kind::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(value)?))"),
        Kind::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Deserialize::from_value(&items[{i}])?")).collect();
            format!(
                "let items = match value.as_array() {{ \
                 Some(a) if a.len() == {n} => a, \
                 _ => return Err(serde::de::DeError::custom({msg:?})) }};\n\
                 Ok({name}({items}))",
                msg = format!("{name}: expected {n}-element array"),
                items = items.join(", ")
            )
        }
        Kind::Named(fields) => {
            let mut out = format!(
                "let map = match value.as_object() {{ Some(m) => m, \
                 _ => return Err(serde::de::DeError::custom({msg:?})) }};\n",
                msg = format!("{name}: expected object")
            );
            out.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!(
                    "{}: {},\n",
                    f.name,
                    de_field_expr(name, "map", &f.name, &f.attrs)
                ));
            }
            out.push_str("})");
            out
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"))
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(_inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let items = match _inner.as_array() {{ \
                             Some(a) if a.len() == {n} => a, \
                             _ => return Err(serde::de::DeError::custom({msg:?})) }}; \
                             Ok({name}::{vn}({items})) }}\n",
                            msg = format!("{name}::{vn}: expected {n}-element array"),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let attrs = Attrs::default();
                        let mut ctor = format!("Ok({name}::{vn} {{ ");
                        for fname in fields {
                            ctor.push_str(&format!(
                                "{fname}: {}, ",
                                de_field_expr(&format!("{name}::{vn}"), "inner_map", fname, &attrs)
                            ));
                        }
                        ctor.push_str("})");
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let inner_map = match _inner.as_object() {{ \
                             Some(m) => m, \
                             _ => return Err(serde::de::DeError::custom({msg:?})) }}; \
                             {ctor} }}\n",
                            msg = format!("{name}::{vn}: expected object"),
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::de::DeError::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))),\n\
                 }},\n\
                 serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (key, _inner) = map.iter().next().expect(\"len checked\");\n\
                 match key.as_str() {{\n\
                 {data_arms}\
                 other => Err(serde::de::DeError::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(serde::de::DeError::custom({msg:?})),\n\
                 }}",
                msg = format!("{name}: expected externally tagged enum"),
            )
        }
    };
    let json_body = gen_from_json(item);
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> Result<Self, serde::de::DeError> {{\n{body}\n}}\n\
         fn from_json(parser: &mut serde::value::JsonParser<'_>) \
         -> Result<Self, serde::de::DeError> {{\n{json_body}\n}}\n\
         }}"
    )
}

/// The expression streaming one named field's value out of the parser.
fn de_json_field_expr(attrs: &Attrs) -> String {
    match &attrs.with {
        // `with` modules consume a tree, so that one field's subtree is
        // materialized; everything around it still streams.
        Some(path) => format!(
            "{path}::deserialize(serde::de::ValueDeserializer(\
             parser.parse_value().map_err(serde::de::DeError)?))?"
        ),
        None => "serde::Deserialize::from_json(parser)?".to_string(),
    }
}

/// The struct-literal arm unwrapping slot variable `f_<fname>`.
fn de_json_ctor_arm(type_name: &str, fname: &str, attrs: &Attrs) -> String {
    if attrs.skip {
        return "Default::default()".to_string();
    }
    if attrs.default {
        return format!("match f_{fname} {{ Some(v) => v, None => Default::default() }}");
    }
    format!(
        "match f_{fname} {{ Some(v) => v, None => \
         return Err(serde::de::DeError::custom({:?})) }}",
        format!("{type_name}: missing field `{fname}`")
    )
}

/// The statements streaming a named-field body (shared by structs and
/// struct variants): slot variables, key loop, then `ctor` built from
/// the slots. `fields` carries `(name, attrs)`.
fn de_json_named_body(type_name: &str, fields: &[(&str, &Attrs)], ctor_head: &str) -> String {
    let mut out = format!(
        "if parser.peek_byte() != Some(b'{{') {{ \
         return Err(serde::de::DeError::custom({msg:?})); }}\n\
         parser.begin_object().map_err(serde::de::DeError)?;\n",
        msg = format!("{type_name}: expected object")
    );
    for (fname, attrs) in fields {
        if !attrs.skip {
            out.push_str(&format!("let mut f_{fname} = None;\n"));
        }
    }
    out.push_str(
        "let mut first = true;\n\
         while let Some(key) = parser.object_key(first).map_err(serde::de::DeError)? {\n\
         first = false;\n\
         match &*key {\n",
    );
    for (fname, attrs) in fields {
        if !attrs.skip {
            out.push_str(&format!(
                "{fname:?} => f_{fname} = Some({}),\n",
                de_json_field_expr(attrs)
            ));
        }
    }
    out.push_str("_ => parser.skip_value().map_err(serde::de::DeError)?,\n}\n}\n");
    out.push_str(ctor_head);
    out.push_str(" {\n");
    for (fname, attrs) in fields {
        out.push_str(&format!("{fname}: {},\n", de_json_ctor_arm(type_name, fname, attrs)));
    }
    out.push_str("}");
    out
}

/// The expression streaming an exactly-`n`-element array into `ctor(..)`.
fn de_json_tuple_body(type_name: &str, n: usize, ctor: &str) -> String {
    let msg = format!("{type_name}: expected {n}-element array");
    let mut elems = String::new();
    for _ in 0..n {
        elems.push_str(&format!(
            "{{ if !parser.array_next(first).map_err(serde::de::DeError)? {{ \
             return Err(serde::de::DeError::custom({msg:?})); }} \
             first = false; serde::Deserialize::from_json(parser)? }},\n"
        ));
    }
    format!(
        "if parser.peek_byte() != Some(b'[') {{ \
         return Err(serde::de::DeError::custom({msg:?})); }}\n\
         parser.begin_array().map_err(serde::de::DeError)?;\n\
         let mut first = true;\n\
         let out = {ctor}(\n{elems});\n\
         let _ = first;\n\
         if parser.array_next(false).map_err(serde::de::DeError)? {{ \
         return Err(serde::de::DeError::custom({msg:?})); }}\n\
         out"
    )
}

fn gen_from_json(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        // The tree path accepts any value for a unit struct; streaming
        // validates and discards one value the same way.
        Kind::Unit => format!("parser.skip_value().map_err(serde::de::DeError)?; Ok({name})"),
        Kind::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_json(parser)?))"),
        Kind::Tuple(n) => format!("Ok({{ {} }})", de_json_tuple_body(name, *n, name)),
        Kind::Named(fields) => {
            let pairs: Vec<(&str, &Attrs)> =
                fields.iter().map(|f| (f.name.as_str(), &f.attrs)).collect();
            let body = de_json_named_body(name, &pairs, &format!("Ok({name}"));
            format!("{body})")
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => {name}::{vn}(serde::Deserialize::from_json(parser)?),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let body = de_json_tuple_body(
                            &format!("{name}::{vn}"),
                            *n,
                            &format!("{name}::{vn}"),
                        );
                        data_arms.push_str(&format!("{vn:?} => {{ {body} }}\n"));
                    }
                    VariantKind::Named(fields) => {
                        let attrs = Attrs::default();
                        let pairs: Vec<(&str, &Attrs)> =
                            fields.iter().map(|f| (f.as_str(), &attrs)).collect();
                        let body = de_json_named_body(
                            &format!("{name}::{vn}"),
                            &pairs,
                            &format!("{name}::{vn}"),
                        );
                        data_arms.push_str(&format!("{vn:?} => {{ {body} }}\n"));
                    }
                }
            }
            let tag_msg = format!("{name}: expected externally tagged enum");
            // A unit-only enum never matches a data arm: emit the object
            // branch without the post-match trailing-key check, which
            // would otherwise be unreachable (every arm returns).
            let object_branch = if data_arms.is_empty() {
                format!(
                    "Some(b'{{') => {{\n\
                     parser.begin_object().map_err(serde::de::DeError)?;\n\
                     match parser.object_key(true).map_err(serde::de::DeError)? {{\n\
                     Some(other) => Err(serde::de::DeError::custom(format!(\
                     \"{name}: unknown variant `{{other}}`\"))),\n\
                     None => Err(serde::de::DeError::custom({tag_msg:?})),\n\
                     }}\n\
                     }}\n"
                )
            } else {
                format!(
                    "Some(b'{{') => {{\n\
                     parser.begin_object().map_err(serde::de::DeError)?;\n\
                     let key = match parser.object_key(true).map_err(serde::de::DeError)? {{\n\
                     Some(k) => k,\n\
                     None => return Err(serde::de::DeError::custom({tag_msg:?})),\n\
                     }};\n\
                     let out = match &*key {{\n\
                     {data_arms}\
                     other => return Err(serde::de::DeError::custom(format!(\
                     \"{name}: unknown variant `{{other}}`\"))),\n\
                     }};\n\
                     if parser.object_key(false).map_err(serde::de::DeError)?.is_some() {{\n\
                     return Err(serde::de::DeError::custom({tag_msg:?}));\n\
                     }}\n\
                     Ok(out)\n\
                     }}\n"
                )
            };
            format!(
                "match parser.peek_byte() {{\n\
                 Some(b'\"') => {{\n\
                 let s = parser.parse_str().map_err(serde::de::DeError)?;\n\
                 match &*s {{\n\
                 {unit_arms}\
                 other => Err(serde::de::DeError::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
                 }}\n\
                 {object_branch}\
                 _ => Err(serde::de::DeError::custom({tag_msg:?})),\n\
                 }}"
            )
        }
    }
}
