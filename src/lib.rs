//! Umbrella crate for the FragDroid reproduction: one `use` away from the
//! whole stack.
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`smali`] | `fd-smali` | decompiled class IR + textual syntax |
//! | [`apk`] | `fd-apk` | manifest, layouts, resources, APK container |
//! | [`appgen`] | `fd-appgen` | synthetic app generation |
//! | [`droidsim`] | `fd-droidsim` | the simulated device |
//! | [`aftm`] | `fd-aftm` | the Activity & Fragment Transition Model |
//! | [`stat`] | `fd-static` | static information extraction |
//! | [`tool`] | `fragdroid` | the FragDroid tool itself |
//! | [`baselines`] | `fd-baselines` | Monkey / activity-MBT / depth-first |
//! | [`report`] | `fd-report` | experiment orchestration + tables |
//! | [`fuzz`] | `fd-fuzz` | ingestion-frontier fuzz harness |

pub use fd_aftm as aftm;
pub use fd_apk as apk;
pub use fd_appgen as appgen;
pub use fd_baselines as baselines;
pub use fd_droidsim as droidsim;
pub use fd_fuzz as fuzz;
pub use fd_report as report;
pub use fd_smali as smali;
pub use fd_static as stat;
pub use fragdroid as tool;
